"""Block-timestep suite: schedule properties, bit-match, resume, golden.

The contracts under test (PR "block timesteps"):

1. **Schedule properties** (hypothesis): rung assignment is deterministic
   and permutation-equivariant; every rung closes at every multiple of
   its span, so all rungs close together at every ``2**k``-aligned sync
   boundary; ``min_rung_at`` only permits block-aligned rung moves.
2. **Active-mask bit-match**: a masked force pass over the active subset
   returns exactly the rows a full evaluation would — bit for bit — for
   both the direct (``block-i``) and tree (``block-jw``) plans.
3. **Degeneracy**: ``n_rungs=1`` reproduces the fixed-dt KDK trajectory
   bit for bit, including the step/force-pass accounting.
4. **Checkpoint/resume**: a checkpoint taken mid sync interval (rung
   state staggered) resumes bit-identically.
5. **Accounting**: ``steps`` counts substeps and ``force_passes`` counts
   non-empty force evaluations consistently, however ``advance()``
   slices the run across sync-interval boundaries.
6. **Golden snapshots**: blessed final-state digests for a Plummer
   sphere and a two-body eccentric orbit (regenerate deliberately with
   ``REPRO_BLESS_GOLDEN=1``; see TESTING.md), plus an energy-drift gate
   at the documented block policies.
7. **Check exit codes**: a per-rung invariant failure exits 1 from
   ``repro-nbody check`` and names the rung in the JSON report.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import GoldenStore, RunGuard, state_digest
from repro.check.invariants import BLOCK_PP_POLICY, BLOCK_TREE_POLICY, policy_for
from repro.core.plans import (
    BlockDirectPlan,
    BlockTreePlan,
    PlanConfig,
    get_plan,
)
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError, StateError, VerificationError
from repro.nbody.ic import plummer
from repro.nbody.particles import ParticleSet
from repro.nbody.timestep import BlockTimestepSchedule, acceleration_timestep
from repro.runtime import RunSession

from tests.conftest import EPS

GOLDEN_DIR = Path(__file__).parent / "golden"
BLESS = os.environ.get("REPRO_BLESS_GOLDEN") == "1"


def block_sim(particles, plan="block-i", *, dt=4e-3, n_rungs=4, **cfg):
    config = PlanConfig(softening=EPS, n_rungs=n_rungs, **cfg)
    return Simulation(particles, plan, dt=dt, plan_config=config)


def two_body_eccentric(e=0.9, a=1.0):
    """Equal-mass binary started at apoapsis of an ``e``-eccentric orbit."""
    r_apo = a * (1.0 + e)
    # Relative-orbit vis-viva at apoapsis with G*M_total = 1.
    v_rel = np.sqrt((1.0 - e) / (a * (1.0 + e)))
    positions = np.array([[-0.5 * r_apo, 0.0, 0.0], [0.5 * r_apo, 0.0, 0.0]])
    velocities = np.array([[0.0, -0.5 * v_rel, 0.0], [0.0, 0.5 * v_rel, 0.0]])
    masses = np.array([0.5, 0.5])
    return ParticleSet(positions, velocities, masses)


# ---------------------------------------------------------------------------
# 1. Schedule properties
# ---------------------------------------------------------------------------

accel_arrays = st.integers(min_value=1, max_value=64).flatmap(
    lambda n: st.lists(
        st.floats(
            min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
        ),
        min_size=3 * n,
        max_size=3 * n,
    ).map(lambda xs: np.asarray(xs, dtype=np.float64).reshape(n, 3))
)


class TestScheduleProperties:
    @given(acc=accel_arrays, n_rungs=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_assign_deterministic_and_permutation_equivariant(
        self, acc, n_rungs
    ):
        sched = BlockTimestepSchedule(dt_max=1e-2, n_rungs=n_rungs, softening=EPS)
        once = sched.assign(acc)
        again = sched.assign(acc.copy())
        np.testing.assert_array_equal(once, again)
        # permuting the bodies permutes the rungs identically
        perm = np.random.default_rng(acc.shape[0]).permutation(acc.shape[0])
        np.testing.assert_array_equal(sched.assign(acc[perm]), once[perm])
        assert once.dtype == np.int64
        assert ((once >= 0) & (once < n_rungs)).all()

    @given(n_rungs=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_every_power_of_two_boundary_is_a_close_point(self, n_rungs):
        sched = BlockTimestepSchedule(dt_max=1.0, n_rungs=n_rungs, softening=EPS)
        rungs = np.arange(n_rungs, dtype=np.int64)
        for boundary in range(1, 2 * sched.n_substeps + 1):
            closes = sched.closes(rungs, boundary)
            for r in range(n_rungs):
                span = 1 << (n_rungs - 1 - r)
                assert closes[r] == (boundary % span == 0)
        # all rungs close together exactly at sync boundaries
        for k in range(1, 4):
            assert sched.closes(rungs, k * sched.n_substeps).all()
            assert sched.is_sync(k * sched.n_substeps)

    @given(n_rungs=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_min_rung_at_is_the_coarsest_aligned_rung(self, n_rungs):
        sched = BlockTimestepSchedule(dt_max=1.0, n_rungs=n_rungs, softening=EPS)
        for s in range(sched.n_substeps):
            lo = sched.min_rung_at(s)
            assert 0 <= lo < n_rungs
            # every allowed rung's block is aligned at s, every coarser
            # (smaller) rung's block is not
            for r in range(n_rungs):
                aligned = s % (1 << (n_rungs - 1 - r)) == 0
                assert aligned == (r >= lo)
        assert sched.min_rung_at(0) == 0

    def test_rung_dt_and_criterion(self):
        sched = BlockTimestepSchedule(dt_max=8e-3, n_rungs=4, softening=EPS)
        np.testing.assert_array_equal(
            sched.rung_dt(np.arange(4)), [8e-3, 4e-3, 2e-3, 1e-3]
        )
        # a body whose criterion sits between rungs rounds to the shorter
        dt_body = np.array([1.0, 8e-3, 7.9e-3, 1e-3, 1e-9, np.inf])
        np.testing.assert_array_equal(
            sched.rungs_from_timesteps(dt_body), [0, 0, 1, 3, 3, 0]
        )

    def test_update_respects_block_alignment(self):
        sched = BlockTimestepSchedule(dt_max=8e-3, n_rungs=4, softening=EPS)
        rungs = np.array([3, 3], dtype=np.int64)
        # huge dt allowed -> wants rung 0, but substep 1 only aligns rung 3
        calm = np.zeros((2, 3))
        out = sched.update(rungs, calm, np.array([0, 1]), 1)
        np.testing.assert_array_equal(out, [3, 3])
        # at substep 4 (half interval) rung 1 (span 4) is the coarsest
        # aligned block
        out = sched.update(rungs, calm, np.array([0, 1]), 4)
        np.testing.assert_array_equal(out, [1, 1])
        # at a sync boundary the move to rung 0 is unrestricted
        out = sched.update(rungs, calm, np.array([0, 1]), 0)
        np.testing.assert_array_equal(out, [0, 0])
        # moving to a shorter step is immediate regardless of alignment
        tight = np.full((2, 3), 1e12)
        out = sched.update(np.zeros(2, dtype=np.int64), tight, np.array([0, 1]), 1)
        np.testing.assert_array_equal(out, [3, 3])
        # the input array is never mutated
        np.testing.assert_array_equal(rungs, [3, 3])

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="dt_max"):
            BlockTimestepSchedule(dt_max=0.0)
        with pytest.raises(ConfigurationError, match="n_rungs"):
            BlockTimestepSchedule(dt_max=1e-3, n_rungs=0)
        with pytest.raises(ConfigurationError, match="softening"):
            BlockTimestepSchedule(dt_max=1e-3, softening=0.0)

    def test_occupancy_counts_every_body(self, plummer_small):
        sched = BlockTimestepSchedule(dt_max=4e-3, n_rungs=4, softening=EPS)
        plan = get_plan("i", PlanConfig(softening=EPS))
        acc = plan.accelerations(
            plummer_small.positions, plummer_small.masses
        )
        rungs = sched.assign(acc)
        occ = sched.occupancy(rungs)
        assert occ.sum() == plummer_small.n
        assert len(occ) == sched.n_rungs


# ---------------------------------------------------------------------------
# 2. Active-mask force bit-match
# ---------------------------------------------------------------------------

class TestActiveMaskBitMatch:
    @pytest.mark.parametrize("plan_name", ["block-i", "block-jw"])
    def test_masked_rows_bit_match_full_evaluation(
        self, plan_name, plummer_small
    ):
        plan = get_plan(plan_name, PlanConfig(softening=EPS))
        pos, m = plummer_small.positions, plummer_small.masses
        full = plan.accelerations(pos, m)
        rng = np.random.default_rng(5)
        for k in (1, 17, 100, plummer_small.n):
            active = np.sort(rng.choice(plummer_small.n, size=k, replace=False))
            rows, bd = plan.compute_step(pos, m, active=active)
            assert rows.shape == (k, 3)
            np.testing.assert_array_equal(rows, full[active])
            assert bd is not None

    @pytest.mark.parametrize("plan_name", ["block-i", "block-jw"])
    def test_empty_active_set_is_free(self, plan_name, plummer_small):
        plan = get_plan(plan_name, PlanConfig(softening=EPS))
        rows, bd = plan.compute_step(
            plummer_small.positions,
            plummer_small.masses,
            active=np.array([], dtype=np.int64),
        )
        assert rows.shape == (0, 3)
        assert bd is None

    def test_active_index_out_of_range_rejected(self, plummer_small):
        plan = get_plan("block-i", PlanConfig(softening=EPS))
        with pytest.raises(ConfigurationError):
            plan.compute_step(
                plummer_small.positions,
                plummer_small.masses,
                active=np.array([plummer_small.n]),
            )

    def test_block_plans_registered_with_inner_delegation(self):
        cfg = PlanConfig(softening=EPS)
        bi, bjw = get_plan("block-i", cfg), get_plan("block-jw", cfg)
        assert isinstance(bi, BlockDirectPlan) and bi.blockstep
        assert isinstance(bjw, BlockTreePlan) and bjw.blockstep
        assert (bi.method, bjw.method) == ("pp", "bh")
        assert bi.inner.name == "i" and bjw.inner.name == "jw"


# ---------------------------------------------------------------------------
# 3. Degeneracy: one rung == fixed dt, bit for bit
# ---------------------------------------------------------------------------

class TestSingleRungDegeneracy:
    @pytest.mark.parametrize(
        "block,fixed", [("block-i", "i"), ("block-jw", "jw")]
    )
    def test_single_rung_matches_fixed_dt_bitwise(
        self, block, fixed, plummer_small
    ):
        dt, steps = 1e-3, 5
        sim_b = block_sim(plummer_small.copy(), block, dt=dt, n_rungs=1)
        sim_f = Simulation(
            plummer_small.copy(), fixed, dt=dt,
            plan_config=PlanConfig(softening=EPS),
        )
        sim_b.run(steps)
        sim_f.run(steps)
        np.testing.assert_array_equal(
            sim_b.particles.positions, sim_f.particles.positions
        )
        np.testing.assert_array_equal(
            sim_b.particles.velocities, sim_f.particles.velocities
        )
        assert sim_b.record.steps == sim_f.record.steps == steps
        assert sim_b.record.force_passes == sim_f.record.force_passes
        assert sim_b.time == sim_f.time


# ---------------------------------------------------------------------------
# 4. Simulation semantics + mid-rung checkpoint/resume
# ---------------------------------------------------------------------------

class TestBlockSimulation:
    def test_block_state_surface(self, plummer_small):
        sim = block_sim(plummer_small.copy(), n_rungs=4)
        assert sim.blockstep and sim.synchronized
        assert sim.rungs is None and sim.substep == 0
        sched = sim.block_schedule
        assert sched.n_substeps == 8 and sched.dt_min == sim.dt / 8
        sim.step()
        assert sim.rungs is not None and sim.substep == 1
        assert not sim.synchronized
        assert sim.time == pytest.approx(sched.dt_min)
        evaluated = 0
        for _ in range(sched.n_substeps - 1):
            bd = sim.step()
            if bd is not None:
                evaluated += bd.meta.get("active_bodies", plummer_small.n)
        assert sim.substep == 0 and sim.synchronized
        assert sim.sync_intervals == 1
        assert sim.record.steps == sched.n_substeps
        assert sim.record.force_passes <= 1 + sched.n_substeps
        # rung-resolved substeps evaluate strictly fewer bodies than a
        # fixed-dt_min integrator would over the same boundaries
        assert 0 < evaluated < (sched.n_substeps - 1) * plummer_small.n

    def test_fixed_dt_sim_has_trivial_block_surface(self, plummer_small):
        sim = Simulation(plummer_small.copy(), "i", dt=1e-3)
        assert not sim.blockstep and sim.synchronized
        assert sim.block_schedule is None and sim.rungs is None
        sim.run(3)
        assert sim.sync_intervals == 3

    def test_seed_rungs_validation(self, plummer_small):
        sim = block_sim(plummer_small.copy(), n_rungs=3)
        fixed = Simulation(plummer_small.copy(), "i", dt=1e-3)
        good = np.zeros(plummer_small.n, dtype=np.int64)
        with pytest.raises(StateError, match="block-timestep"):
            fixed.seed_rungs(good)
        with pytest.raises(ConfigurationError, match="shape"):
            sim.seed_rungs(good[:-1])
        with pytest.raises(ConfigurationError, match="rung"):
            sim.seed_rungs(good + 3)
        with pytest.raises(ConfigurationError, match="substep"):
            sim.seed_rungs(good, substep=4)

    def test_mid_rung_checkpoint_resume_bit_identical(
        self, tmp_path, plummer_small
    ):
        dt, target = 4e-3, 11  # 8 substeps/interval -> ckpt at 5 is mid-rung
        base = plummer_small.copy()

        solo = block_sim(base.copy(), n_rungs=4, dt=dt)
        RunSession(solo, tmp_path / "solo", checkpoint_every=100).run(target)

        sim_a = block_sim(base.copy(), n_rungs=4, dt=dt)
        rundir = tmp_path / "resumed"
        RunSession(sim_a, rundir, checkpoint_every=5).run(5)
        session = RunSession.resume(rundir)
        sim_b = session.simulation
        # the checkpoint really was mid sync interval, rung state restored
        assert sim_b.substep == 5 and not sim_b.synchronized
        np.testing.assert_array_equal(sim_b.rungs, sim_a.rungs)
        session.run(target)

        np.testing.assert_array_equal(
            sim_b.particles.positions, solo.particles.positions
        )
        np.testing.assert_array_equal(
            sim_b.particles.velocities, solo.particles.velocities
        )
        np.testing.assert_array_equal(sim_b.rungs, solo.rungs)
        assert sim_b.substep == solo.substep
        assert sim_b.record.steps == solo.record.steps == target
        assert sim_b.record.force_passes == solo.record.force_passes
        assert sim_b.time == solo.time

    def test_fixed_dt_checkpoints_resume_without_rung_state(
        self, tmp_path, plummer_small
    ):
        sim = Simulation(plummer_small.copy(), "i", dt=1e-3)
        RunSession(sim, tmp_path, checkpoint_every=2).run(4)
        session = RunSession.resume(tmp_path)
        assert not session.simulation.blockstep
        assert session.simulation.rungs is None


# ---------------------------------------------------------------------------
# 5. steps vs force_passes accounting under advance() slicing
# ---------------------------------------------------------------------------

class TestAccounting:
    def test_sliced_advance_mid_interval_matches_one_shot(
        self, tmp_path, plummer_small
    ):
        """``advance(max_steps)`` slices landing mid sync interval must not
        skew the steps/force_passes ledger (regression: the accounting is
        per substep, not per sync interval)."""
        dt, target = 4e-3, 13  # 8 substeps/interval; 13 is never aligned
        base = plummer_small.copy()

        one_shot = block_sim(base.copy(), n_rungs=4, dt=dt)
        RunSession(one_shot, tmp_path / "a", checkpoint_every=100).run(target)

        sliced = block_sim(base.copy(), n_rungs=4, dt=dt)
        session = RunSession(sliced, tmp_path / "b", checkpoint_every=100)
        session.start(target)
        ticks = 0
        while not session.advance(3):  # 3 never divides the 8-substep cycle
            ticks += 1
            assert ticks < 100
        assert session.complete

        assert sliced.record.steps == one_shot.record.steps == target
        assert sliced.record.force_passes == one_shot.record.force_passes
        # bootstrap pass + at most one pass per substep, never more
        assert sliced.record.force_passes <= 1 + target
        np.testing.assert_array_equal(
            sliced.particles.positions, one_shot.particles.positions
        )

    def test_force_passes_skip_empty_substeps(self, plummer_small):
        """Substeps where no body's step closes must not bill a pass."""
        sim = block_sim(plummer_small.copy(), n_rungs=4, dt=4e-3)
        sim.run(sim.block_schedule.n_substeps)
        occupied = sim.block_schedule.occupancy(sim.rungs)
        # with the top rungs occupied, some substep boundaries are idle
        # for deep-rung-only activity; the ledger reflects real passes
        passes = sim.record.force_passes - 1  # minus bootstrap
        assert passes <= sim.block_schedule.n_substeps
        assert passes >= 1
        assert occupied.sum() == plummer_small.n


# ---------------------------------------------------------------------------
# 6. Golden snapshots + energy-drift gate
# ---------------------------------------------------------------------------

def _golden_roundtrip(sim, case):
    store = GoldenStore(GOLDEN_DIR)
    digest = state_digest(sim.particles, sim.time)
    if BLESS:
        store.bless(case, digest, meta={"suite": "blockstep"})
        pytest.skip(f"blessed {case}")
    verdict = store.verify(case, digest)
    assert verdict["status"] == "match", (
        f"golden {case}: {verdict['status']} (got {digest[:12]}…); rerun "
        "with REPRO_BLESS_GOLDEN=1 to re-bless if the change is intended"
    )


class TestGoldenSnapshots:
    def test_plummer_block_i_golden(self, plummer_small):
        sim = block_sim(plummer_small.copy(), "block-i", dt=4e-3, n_rungs=4)
        sim.run(16)
        _golden_roundtrip(sim, "blockstep-plummer-n256-s11-block-i-16")

    def test_two_body_eccentric_golden(self):
        sim = block_sim(two_body_eccentric(), "block-i", dt=2e-2, n_rungs=5)
        sim.run(64)
        _golden_roundtrip(sim, "blockstep-twobody-e0.9-block-i-64")

    def test_two_body_deepens_rung_near_periapsis(self):
        """The eccentric binary must migrate to finer rungs as it falls.

        Apoapsis-to-periapsis is half the ``2*pi`` period; integrating
        past it must push the pair off its starting rung as the
        acceleration criterion tightens by ``(1+e)/(1-e) ~ 19x``.
        """
        sim = block_sim(two_body_eccentric(), "block-i", dt=2e-2, n_rungs=5)
        sim.step()
        start = deepest = int(sim.rungs.max())
        for _ in range(170):  # ~3.4 time units > half period
            sim.run(sim.block_schedule.n_substeps)
            deepest = max(deepest, int(sim.rungs.max()))
        assert deepest > start
        dt_body = acceleration_timestep(
            sim.last_acceleration, softening=EPS, eta=0.025
        )
        assert sim.block_schedule.rungs_from_timesteps(dt_body).max() >= start

    @pytest.mark.parametrize(
        "plan,policy",
        [("block-i", BLOCK_PP_POLICY), ("block-jw", BLOCK_TREE_POLICY)],
    )
    def test_energy_drift_within_block_policy(
        self, plan, policy, plummer_small
    ):
        """Regression gate: two full sync intervals stay inside the
        documented per-sync energy budget (and the rest of the policy)."""
        sim = block_sim(plummer_small.copy(), plan, dt=4e-3, n_rungs=4)
        assert policy_for(plan) == policy
        guard = RunGuard()
        guard.prime(sim)
        sim.run(2 * sim.block_schedule.n_substeps)
        report = guard.check(sim, where="final")  # raises on violation
        assert report.ok
        energy = next(
            r for r in report.results if r.name == "energy_drift"
        )
        assert energy.threshold == policy.energy_drift_per_sync * 2
        assert energy.rung == int(sim.rungs.max())

    def test_mid_interval_guard_skips_drift_checks(self, plummer_small):
        sim = block_sim(plummer_small.copy(), "block-i", dt=4e-3, n_rungs=4)
        guard = RunGuard()
        guard.prime(sim)
        sim.run(3)  # mid sync interval: staggered kick phases
        assert not sim.synchronized
        report = guard.check(sim, where="slice")
        names = {r.name for r in report.results}
        assert "energy_drift" not in names
        assert "finite_state" in names


# ---------------------------------------------------------------------------
# 7. repro-nbody check: per-rung invariant failure -> exit 1 + rung id
# ---------------------------------------------------------------------------

@pytest.mark.cli
class TestCheckCli:
    def test_per_rung_failure_exits_1_with_rung_in_report(
        self, tmp_path, monkeypatch, capsys
    ):
        from dataclasses import replace

        import repro.check.guards as guards
        from repro.cli import main

        # Shrink the per-sync energy budget so the block plan's normal
        # drift becomes a violation; fixed-dt plans keep their defaults.
        real_policy_for = guards.policy_for

        def tiny_budget(plan_name):
            policy = real_policy_for(plan_name)
            if policy.energy_drift_per_sync is None:
                return policy
            return replace(
                policy, name="tiny", energy_drift_per_sync=1e-30
            )

        monkeypatch.setattr(guards, "policy_for", tiny_budget)
        out = tmp_path / "report.json"
        with pytest.raises(SystemExit) as exc:
            main([
                "check", "--workload", "plummer", "--n", "128",
                "--plans", "block-i", "--reference", "i",
                "--backends", "serial", "--kernel-backends", "",
                "--dt", "4e-3", "--steps", "16", "--json", str(out),
            ])
        assert exc.value.code == 1
        report = json.loads(out.read_text())
        assert report["ok"] is False and report["invariants_ok"] is False
        (row,) = report["invariants"]
        assert row["plan"] == "block-i" and row["ok"] is False
        failed = [
            r for r in row["report"]["results"]
            if not r["ok"] and r["name"] == "energy_drift"
        ]
        assert failed and isinstance(failed[0]["rung"], int)
        assert "rung" in row["error"]
        assert "FAIL" in capsys.readouterr().out

    def test_block_plans_pass_check_battery(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        assert main([
            "check", "--workload", "plummer", "--n", "128",
            "--plans", "block-i,block-jw", "--reference", "i",
            "--backends", "serial", "--kernel-backends", "",
            "--dt", "4e-3", "--steps", "16", "--json", str(out),
        ]) in (0, None)
        report = json.loads(out.read_text())
        assert report["ok"] is True
        for row in report["invariants"]:
            results = row["report"]["results"]
            assert any(r.get("rung") is not None for r in results)


# ---------------------------------------------------------------------------
# 8. Oracle matrix: plan x kernel backend x precision (slow)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestBlockstepOracleMatrix:
    @pytest.mark.parametrize("plan_name", ["block-i", "block-jw"])
    @pytest.mark.parametrize("kernel_backend", ["numpy", "cext"])
    def test_masked_pass_bit_matches_across_backends(
        self, plan_name, kernel_backend, plummer_medium
    ):
        from repro.nbody.kernels import get_backend

        if not get_backend(kernel_backend).available:
            pytest.skip(f"kernel backend {kernel_backend} unavailable")
        cfg = PlanConfig(softening=EPS, kernel_backend=kernel_backend)
        plan = get_plan(plan_name, cfg)
        pos, m = plummer_medium.positions, plummer_medium.masses
        full = plan.accelerations(pos, m)
        active = np.arange(0, plummer_medium.n, 7)
        rows, _ = plan.compute_step(pos, m, active=active)
        np.testing.assert_array_equal(rows, full[active])

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("kernel_backend", ["numpy", "cext"])
    def test_active_forces_bit_match_per_dtype(
        self, dtype, kernel_backend, plummer_medium
    ):
        """The masked rectangle primitive bit-matches full-evaluation rows
        in both precisions on every kernel backend (per-target-row sums
        are independent of how targets are grouped)."""
        from repro.nbody.forces import active_forces
        from repro.nbody.kernels import get_backend

        if not get_backend(kernel_backend).available:
            pytest.skip(f"kernel backend {kernel_backend} unavailable")
        pos, m = plummer_medium.positions, plummer_medium.masses
        kw = dict(softening=EPS, dtype=dtype, backend=kernel_backend)
        full = active_forces(pos, m, np.arange(plummer_medium.n), **kw)
        active = np.arange(0, plummer_medium.n, 5)
        rows = active_forces(pos, m, active, **kw)
        np.testing.assert_array_equal(rows, full[active])

    @pytest.mark.parametrize("plan_name", ["block-i", "block-jw"])
    @pytest.mark.parametrize("kernel_backend", ["numpy", "cext"])
    def test_trajectory_oracle_vs_fixed_dt_min(
        self, plan_name, kernel_backend, plummer_small
    ):
        """Differential oracle: a rung-resolved trajectory must stay
        within the documented cross-plan tolerance of the fixed-dt_min
        trajectory it subsamples (f32 kernels, f64 state)."""
        from repro.check.oracle import (
            PP_CROSS_PLAN,
            TREE_CROSS_PLAN,
            assert_within,
        )
        from repro.nbody.kernels import get_backend

        if not get_backend(kernel_backend).available:
            pytest.skip(f"kernel backend {kernel_backend} unavailable")
        cfg = dict(kernel_backend=kernel_backend)
        dt, intervals = 4e-3, 2
        block = block_sim(
            plummer_small.copy(), plan_name, dt=dt, n_rungs=3, **cfg
        )
        n_steps = intervals * block.block_schedule.n_substeps
        evaluated = plummer_small.n  # bootstrap pass sees every body
        for _ in range(n_steps):
            bd = block.step()
            if bd is not None:
                evaluated += bd.meta.get("active_bodies", plummer_small.n)

        fixed_name = "i" if plan_name == "block-i" else "jw"
        fixed = Simulation(
            plummer_small.copy(), fixed_name,
            dt=dt / block.block_schedule.n_substeps,
            plan_config=PlanConfig(softening=EPS, **cfg),
        )
        fixed.run(n_steps)

        tol = PP_CROSS_PLAN if plan_name == "block-i" else TREE_CROSS_PLAN
        assert_within(
            fixed.particles.positions,
            block.particles.positions,
            tol,
            context=f"{plan_name}/{kernel_backend} vs {fixed_name}@dt_min",
        )
        # fixed dt_min evaluates every body at every boundary (+bootstrap)
        assert evaluated < (n_steps + 1) * plummer_small.n

"""Tests for repro.check: oracle, invariants, guards, golden, settings.

The contracts under test:

1. the differential oracle measures deviation honestly — ulp distances,
   per-body relative error, bit-identity — and its plan x backend matrix
   passes where the library promises bit-identity;
2. the invariant engine flags energy/momentum drift, non-finite state and
   broken pairwise symmetry under per-plan tolerance policies;
3. a guarded :class:`~repro.runtime.RunSession` refuses to checkpoint a
   corrupted state, and a guarded serve job fails its handle with
   :class:`~repro.errors.VerificationError` when its plan serves
   perturbed forces (the PR's acceptance gate);
4. golden snapshots round-trip: bless, verify, mismatch, missing;
5. the verify default resolves through configure/env precedence.
"""

import dataclasses
import json

import numpy as np
import pytest

import repro
from repro.check import (
    BIT_IDENTICAL,
    PP_POLICY,
    STRICT_POLICY,
    TREE_POLICY,
    DifferentialOracle,
    ForceTolerance,
    GoldenStore,
    InvariantEngine,
    RunGuard,
    TolerancePolicy,
    assert_bit_identical,
    assert_within,
    compare_arrays,
    clear_overrides,
    default_guard,
    policy_for,
    state_digest,
    ulp_distance,
)
from repro.check.oracle import expected_tolerance
from repro.check.settings import ENV_ENABLED, ENV_ENERGY_TOL, ENV_EVERY
from repro.core.plans import PlanConfig
from repro.core.plans import registry as plan_registry
from repro.core.plans.i_parallel import IParallelPlan
from repro.errors import (
    ConfigurationError,
    StateError,
    VerificationError,
)
from repro.exec import ExecutionEngine
from repro.nbody.ic import plummer
from repro.runtime import RunSession
from repro.serve import connect
from tests.conftest import EPS, make_sim, small_spec


@pytest.fixture(autouse=True)
def _clean_check_settings(monkeypatch):
    """Each test starts with no configure override and no REPRO_CHECK_* env."""
    clear_overrides()
    for var in (ENV_ENABLED, ENV_EVERY, ENV_ENERGY_TOL):
        monkeypatch.delenv(var, raising=False)
    yield
    clear_overrides()


# ---------------------------------------------------------------------------
# Oracle primitives
# ---------------------------------------------------------------------------

class TestUlpDistance:
    def test_zero_for_identical(self):
        a = np.array([1.0, -2.5, 0.0])
        assert ulp_distance(a, a.copy()).max() == 0

    def test_adjacent_floats_are_one_ulp(self):
        a = np.array([1.0, -1.0, 1e300])
        b = np.nextafter(a, np.inf)
        assert list(ulp_distance(a, b)) == [1, 1, 1]

    def test_crosses_zero_monotonically(self):
        tiny = np.nextafter(0.0, 1.0)
        assert ulp_distance(np.array([-tiny]), np.array([tiny]))[0] == 2

    def test_nan_same_bits_is_zero(self):
        a = np.array([np.nan])
        assert ulp_distance(a, a.copy())[0] == 0

    def test_nan_vs_number_is_huge(self):
        d = ulp_distance(np.array([np.nan]), np.array([1.0]))[0]
        assert d == 2**62


class TestCompareArrays:
    def test_bit_identical_fast_path(self):
        a = np.random.default_rng(0).normal(size=(64, 3))
        dev = compare_arrays(a, a.copy())
        assert dev.bit_identical
        assert dev.max_ulps == 0
        assert dev.max_abs_error == 0.0

    def test_per_body_relative_error(self):
        ref = np.ones((4, 3))
        cand = ref.copy()
        cand[2] *= 1.0 + 1e-6
        dev = compare_arrays(ref, cand)
        assert not dev.bit_identical
        assert dev.worst_body == 2
        assert dev.max_rel_error == pytest.approx(1e-6, rel=1e-2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError, match="shape"):
            compare_arrays(np.ones((3, 3)), np.ones((4, 3)))

    def test_deviation_round_trips_to_json(self):
        dev = compare_arrays(np.ones((2, 3)), np.full((2, 3), 1.0 + 1e-9))
        parsed = json.loads(json.dumps(dev.to_dict()))
        assert parsed["bit_identical"] is False
        assert parsed["n"] == 2


class TestTolerances:
    def test_bit_identical_admits_only_zero_deviation(self):
        ref = np.ones((2, 3))
        assert BIT_IDENTICAL.admits(compare_arrays(ref, ref.copy()))
        assert not BIT_IDENTICAL.admits(
            compare_arrays(ref, np.nextafter(ref, np.inf))
        )

    def test_expected_tolerance_same_plan_is_bit_identical(self):
        assert expected_tolerance("jw", "jw") is BIT_IDENTICAL
        assert expected_tolerance("i", "i") is BIT_IDENTICAL

    def test_expected_tolerance_by_method(self):
        assert expected_tolerance("i", "j").name == "pp-cross-plan"
        assert expected_tolerance("w", "jw").name == "tree-cross-plan"
        assert expected_tolerance("i", "w").name == "tree-vs-direct"

    def test_assert_bit_identical_raises_with_measurement(self):
        ref = np.ones((3, 3))
        cand = ref.copy()
        cand[1, 1] = np.nextafter(1.0, 2.0)
        with pytest.raises(VerificationError) as exc_info:
            assert_bit_identical(ref, cand, context="unit")
        assert "unit" in str(exc_info.value)
        assert exc_info.value.report is not None

    def test_assert_within_admits_and_rejects(self):
        ref = np.ones((2, 3))
        loose = ForceTolerance(name="loose", max_rel=1e-3, rms_rel=1e-3)
        assert_within(ref, ref * (1.0 + 1e-7), loose, context="ok")
        with pytest.raises(VerificationError):
            assert_within(ref, ref * 1.5, loose, context="off")


# ---------------------------------------------------------------------------
# Differential oracle
# ---------------------------------------------------------------------------

class TestDifferentialOracle:
    def test_same_plan_serial_is_bit_identical(self, bodies, config):
        pos, mass = bodies
        oracle = DifferentialOracle("j", config)
        cmp = oracle.compare("j", pos, mass)
        assert cmp.ok and cmp.deviation.bit_identical

    def test_cross_plan_within_documented_tolerance(self, bodies, config):
        pos, mass = bodies
        oracle = DifferentialOracle("i", config)
        cmp = oracle.compare("w", pos, mass)
        assert cmp.ok
        assert not cmp.deviation.bit_identical  # tree approximates
        cmp.raise_if_failed()

    def test_comparison_serialises(self, config):
        p = plummer(64, seed=3)
        cmp = DifferentialOracle("i", config).compare(
            "j", p.positions, p.masses
        )
        doc = json.loads(json.dumps(cmp.to_dict()))
        assert doc["ok"] is True
        assert doc["tolerance"]["name"] == "pp-cross-plan"

    @pytest.mark.slow
    @pytest.mark.process_backend
    def test_full_matrix_plans_by_backends(self, bodies, config):
        """The PR's determinism matrix: serial/thread/process x i/j/w/jw.

        Every parallel backend must be bit-identical to its plan's serial
        run; every plan must sit within its documented tolerance of the
        reference plan.  This is the test-suite twin of
        ``repro-nbody check``.
        """
        pos, mass = bodies
        oracle = DifferentialOracle("i", config)
        results = oracle.matrix(
            pos,
            mass,
            plans=("i", "j", "w", "jw"),
            backends=("serial", "thread", "process"),
            workers=2,
        )
        assert len(results) == 12  # 4 plans x (1 cross-plan + 2 backends)
        failures = [c for c in results if not c.ok]
        assert not failures, "\n".join(str(c) for c in failures)
        backend_rows = [c for c in results if c.meta.get("axis") == "backend"]
        assert len(backend_rows) == 8
        assert all(c.deviation.bit_identical for c in backend_rows)


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------

class TestTolerancePolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TolerancePolicy(energy_drift=-1.0)
        with pytest.raises(ConfigurationError):
            TolerancePolicy(symmetry_samples=-1)

    def test_policy_for_picks_by_method(self):
        assert policy_for("i") is PP_POLICY
        assert policy_for("j") is PP_POLICY
        assert policy_for("w") is TREE_POLICY
        assert policy_for("jw") is TREE_POLICY
        with pytest.raises(ConfigurationError):
            policy_for("nope")


class TestInvariantEngine:
    def _engine(self, policy=PP_POLICY):
        return InvariantEngine(policy, softening=EPS)

    def test_clean_run_passes_all_checks(self):
        sim = make_sim("j", n=128)
        eng = self._engine()
        base = eng.baseline(sim.particles)
        sim.run(10)
        report = eng.evaluate(
            sim.particles, base, step=10, accelerations=sim.last_acceleration
        )
        assert report.ok, str(report.to_dict())
        names = {r.name for r in report.results}
        assert names == {
            "finite_state",
            "energy_drift",
            "momentum_drift",
            "angular_momentum_drift",
            "net_force",
            "pair_antisymmetry",
        }

    def test_nan_state_fails_finite_sentinel_only(self):
        sim = make_sim()
        eng = self._engine()
        base = eng.baseline(sim.particles)
        sim.particles.positions[3, 1] = np.nan
        report = eng.evaluate(sim.particles, base, step=1)
        assert not report.ok
        assert [r.name for r in report.failures] == ["finite_state"]
        # NaN energy sums are skipped, not reported as drift
        assert len(report.results) == 1

    def test_velocity_kick_fails_momentum_drift(self):
        sim = make_sim(n=64)
        eng = self._engine()
        base = eng.baseline(sim.particles)
        sim.particles.velocities[0] += 100.0
        report = eng.evaluate(sim.particles, base, step=1)
        failed = {r.name for r in report.failures}
        assert "momentum_drift" in failed

    def test_strict_policy_checks_finite_only_drift_free(self):
        sim = make_sim(n=64)
        eng = self._engine(STRICT_POLICY)
        base = eng.baseline(sim.particles)
        sim.particles.velocities[0] += 100.0  # huge drift, no corruption
        report = eng.evaluate(sim.particles, base, step=1)
        assert report.ok

    def test_raise_if_failed_carries_report(self):
        sim = make_sim()
        eng = self._engine()
        base = eng.baseline(sim.particles)
        sim.particles.positions[0, 0] = np.inf
        report = eng.evaluate(sim.particles, base, step=2)
        with pytest.raises(VerificationError) as exc_info:
            report.raise_if_failed(context="unit-test")
        assert exc_info.value.report is report
        assert "unit-test" in str(exc_info.value)

    def test_antisymmetry_sampling_is_deterministic(self):
        sim = make_sim(n=32)
        eng = self._engine()
        base = eng.baseline(sim.particles)
        a = eng.evaluate(sim.particles, base, step=5)
        b = eng.evaluate(sim.particles, base, step=5)
        pa = [r for r in a.results if r.name == "pair_antisymmetry"][0]
        pb = [r for r in b.results if r.name == "pair_antisymmetry"][0]
        assert pa.value == pb.value


# ---------------------------------------------------------------------------
# RunGuard + RunSession integration
# ---------------------------------------------------------------------------

class TestRunGuard:
    def test_check_before_prime_raises(self):
        with pytest.raises(StateError):
            RunGuard().check(make_sim())

    def test_prime_resolves_plan_default_policy(self):
        guard = RunGuard()
        guard.prime(make_sim("jw"))
        assert guard.policy is TREE_POLICY
        guard2 = RunGuard()
        guard2.prime(make_sim("i"))
        assert guard2.policy is PP_POLICY

    def test_every_cadence_dedups_steps(self):
        guard = RunGuard(every=2)
        sim = make_sim(n=48)
        guard.prime(sim)
        sim.run(4)
        assert guard.maybe_check(sim) is not None
        assert guard.maybe_check(sim) is None  # same step: deduped
        sim.run(5)  # step 9: off-cadence
        assert guard.maybe_check(sim) is None
        assert guard.evaluations == 1

    def test_guarded_session_completes_clean_run(self, tmp_path):
        session = RunSession(
            make_sim(n=64), tmp_path / "run", checkpoint_every=3,
            guard=RunGuard(),
        )
        session.run(6)
        assert session.complete
        assert session.guard.evaluations >= 2  # step 3 + final
        assert session.guard.failures == 0

    def test_corrupted_state_fails_before_checkpoint_persists(self, tmp_path):
        """The guard fires before the bad state becomes resumable."""
        session = RunSession(
            make_sim(n=64), tmp_path / "run", checkpoint_every=2,
            guard=RunGuard(),
        )

        def poison(sim):
            if sim.record.steps == 1:
                sim.particles.positions[0, 0] = np.nan

        with pytest.raises(VerificationError):
            session.run(4, callback=poison)
        # only checkpoints strictly before the corruption exist
        assert all(
            c.step < 2 for c in session.manifest.checkpoints
        ), "a corrupted state was persisted as a checkpoint"

    def test_guard_false_disables_enabled_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_ENABLED, "1")
        session = RunSession(make_sim(), tmp_path / "run", guard=False)
        assert session.guard is None

    def test_guard_emits_spans_and_counters(self, tmp_path):
        from repro import obs

        obs.enable(reset=True)
        try:
            session = RunSession(
                make_sim(n=48), tmp_path / "run", guard=RunGuard()
            )
            session.run(3)
            names = [s.name for s in obs.tracer().spans]
            assert "check.invariants" in names
            snap = obs.metrics().snapshot()
            assert snap["check.evaluations_total"]["value"] >= 1
        finally:
            obs.disable()


class TestCheckSettings:
    def test_default_is_no_guard(self):
        assert default_guard() is None

    def test_env_enables_guard(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLED, "1")
        monkeypatch.setenv(ENV_EVERY, "5")
        guard = default_guard()
        assert isinstance(guard, RunGuard)
        assert guard.every == 5

    def test_env_energy_tol_builds_policy(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLED, "true")
        monkeypatch.setenv(ENV_ENERGY_TOL, "0.25")
        guard = default_guard()
        assert guard.policy is not None
        assert guard.policy.energy_drift == 0.25

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLED, "maybe")
        with pytest.raises(ConfigurationError):
            default_guard()

    def test_configure_verify_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLED, "1")
        repro.configure(verify=False)
        assert default_guard() is None

    def test_configure_verify_policy_is_pinned(self):
        policy = dataclasses.replace(PP_POLICY, name="pinned")
        repro.configure(verify=policy)
        guard = default_guard()
        assert guard is not None and guard.policy.name == "pinned"

    def test_configure_rejects_bad_verify(self):
        with pytest.raises(ConfigurationError):
            repro.configure(verify="yes")

    def test_session_picks_up_configured_default(self, tmp_path):
        repro.configure(verify=True)
        session = RunSession(make_sim(), tmp_path / "run")
        assert isinstance(session.guard, RunGuard)


# ---------------------------------------------------------------------------
# Golden snapshots
# ---------------------------------------------------------------------------

class TestGoldenStore:
    def test_digest_is_deterministic_and_state_sensitive(self):
        a, b = make_sim(n=32), make_sim(n=32)
        a.run(3)
        b.run(3)
        assert state_digest(a.particles, a.time) == state_digest(
            b.particles, b.time
        )
        b.run(1)
        assert state_digest(a.particles, a.time) != state_digest(
            b.particles, b.time
        )

    def test_bless_verify_roundtrip(self, tmp_path):
        store = GoldenStore(tmp_path)
        case = store.case_id(
            workload="plummer", n=32, seed=7, plan="j", dt=1e-3, steps=3
        )
        store.bless(case, "abc123", meta={"n": 32})
        assert store.verify(case, "abc123")["status"] == "match"
        assert store.verify(case, "def456")["status"] == "mismatch"
        assert case in store.cases()

    def test_missing_case_reports_missing(self, tmp_path):
        store = GoldenStore(tmp_path)
        out = store.verify("never-blessed", "abc")
        assert out["status"] == "missing"

    def test_rebless_overwrites(self, tmp_path):
        store = GoldenStore(tmp_path)
        store.bless("case", "old", meta={})
        store.bless("case", "new", meta={})
        assert store.verify("case", "new")["status"] == "match"


# ---------------------------------------------------------------------------
# Serve integration: the acceptance gate
# ---------------------------------------------------------------------------

class _PerturbedPlan(IParallelPlan):
    """An i-plan whose forces are silently wrong — what guards exist for."""

    name = "perturbed-test"

    def accelerations(self, positions, masses):
        acc = super().accelerations(positions, masses).copy()
        acc[0] += 1e6  # a corrupted kernel: one body gets a huge kick
        return acc


@pytest.fixture()
def perturbed_plan():
    plan_registry.register("perturbed-test")(_PerturbedPlan)
    yield "perturbed-test"
    plan_registry.unregister("perturbed-test")


@pytest.mark.serve
class TestServeVerification:
    def test_guarded_job_with_perturbed_forces_fails(
        self, tmp_path, perturbed_plan
    ):
        """Acceptance: an injected force perturbation in a guarded job
        raises VerificationError instead of completing."""
        spec = small_spec(
            plan=perturbed_plan,
            plan_config=PlanConfig(softening=EPS),
            steps=6,
        )
        svc = connect(None, cache_dir=tmp_path, verify=True, steps_per_slice=2)
        try:
            handle = svc.submit(spec)
            handle.wait(timeout=120)
        finally:
            svc.close()
        assert handle.status == "failed"
        assert isinstance(handle.error, VerificationError)

    def test_guarded_job_with_good_forces_completes(self, tmp_path):
        spec = small_spec(steps=6)
        svc = connect(None, cache_dir=tmp_path, verify=True, steps_per_slice=2)
        try:
            result = svc.submit(spec).result(timeout=120)
        finally:
            svc.close()
        assert result.steps == 6

    def test_per_submit_verify_overrides_service_default(
        self, tmp_path, perturbed_plan
    ):
        """verify=False on one submission opts that job out of guarding."""
        spec = small_spec(
            plan=perturbed_plan,
            plan_config=PlanConfig(softening=EPS),
            steps=6,
        )
        svc = connect(None, cache_dir=tmp_path, verify=True, steps_per_slice=2)
        try:
            handle = svc.submit(spec, verify=False)
            result = handle.result(timeout=120)
        finally:
            svc.close()
        assert result.steps == 6

    def test_failed_verification_not_cached(self, tmp_path, perturbed_plan):
        spec = small_spec(
            plan=perturbed_plan,
            plan_config=PlanConfig(softening=EPS),
            steps=6,
        )
        svc = connect(None, cache_dir=tmp_path, verify=True, steps_per_slice=2)
        try:
            bad = svc.submit(spec)
            bad.wait(timeout=120)
            assert bad.status == "failed"
            # resubmitted without guarding: must re-run, not hit a cache
            good = svc.submit(spec, verify=False)
            result = good.result(timeout=120)
        finally:
            svc.close()
        assert not result.from_cache


# ---------------------------------------------------------------------------
# Parallel-backend guard sanity
# ---------------------------------------------------------------------------

class TestGuardAcrossBackends:
    @pytest.mark.parametrize(
        "backend",
        ["thread", pytest.param("process", marks=pytest.mark.process_backend)],
    )
    def test_guarded_session_on_parallel_backend(self, tmp_path, backend):
        with ExecutionEngine(backend=backend, workers=2) as engine:
            session = RunSession(
                make_sim(engine=engine, n=64),
                tmp_path / "run",
                checkpoint_every=3,
                guard=RunGuard(),
            )
            session.run(6)
        assert session.complete
        assert session.guard.failures == 0

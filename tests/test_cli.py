"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_experiments_accepted(self):
        args = build_parser().parse_args(["fig4"])
        assert args.experiment == "fig4"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_flags(self):
        args = build_parser().parse_args(
            ["table2", "--quick", "--workload", "uniform", "--steps", "10"]
        )
        assert args.quick
        assert args.workload == "uniform"
        assert args.steps == 10

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestMain:
    def test_fig4_quick(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "GFLOPS" in out

    def test_table2_quick_custom_steps(self, capsys):
        assert main(["table2", "--quick", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "10 steps" in out
        assert "jw-parallel" in out

    def test_abl_queue(self, capsys):
        assert main(["abl-queue"]) == 0
        out = capsys.readouterr().out
        assert "dynamic" in out

    def test_workload_option(self, capsys):
        assert main(["fig4", "--quick", "--workload", "uniform"]) == 0

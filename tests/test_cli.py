"""Tests for the command-line interface (subcommands + flat compat path)."""

import json

import pytest

from repro import obs
from repro.cli import _compat_argv, build_parser, main


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_experiments_accepted(self):
        args = build_parser().parse_args(["bench", "fig4"])
        assert args.command == "bench"
        assert args.experiment == "fig4"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_flags(self):
        args = build_parser().parse_args(
            ["bench", "table2", "--quick", "--workload", "uniform", "--steps", "10"]
        )
        assert args.quick
        assert args.workload == "uniform"
        assert args.steps == 10

    def test_run_flags(self):
        args = build_parser().parse_args(
            [
                "run",
                "--n", "256",
                "--plan", "j",
                "--steps", "20",
                "--checkpoint-every", "5",
                "--out", "rundir",
                "--max-retries", "3",
            ]
        )
        assert args.command == "run"
        assert args.n == 256
        assert args.plan == "j"
        assert args.checkpoint_every == 5
        assert args.max_retries == 3

    def test_resume_requires_rundir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resume"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCompatPath:
    """The pre-subcommand flat form is rewritten to 'bench ...'."""

    def test_experiment_id_prefixed(self):
        assert _compat_argv(["fig4", "--quick"]) == ["bench", "fig4", "--quick"]

    def test_subcommands_pass_through(self):
        for argv in (["bench", "fig4"], ["profile", "table2"], ["run"], ["resume", "d"]):
            assert _compat_argv(argv) == argv

    def test_flags_pass_through(self):
        assert _compat_argv(["--version"]) == ["--version"]
        assert _compat_argv([]) == []

    def test_flat_invocation_runs(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        assert "Fig. 4" in capsys.readouterr().out


class TestMain:
    def test_fig4_quick(self, capsys):
        assert main(["bench", "fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "GFLOPS" in out

    def test_table2_quick_custom_steps(self, capsys):
        assert main(["table2", "--quick", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "10 steps" in out
        assert "jw-parallel" in out

    def test_abl_queue(self, capsys):
        assert main(["abl-queue"]) == 0
        out = capsys.readouterr().out
        assert "dynamic" in out

    def test_workload_option(self, capsys):
        assert main(["bench", "fig4", "--quick", "--workload", "uniform"]) == 0


class TestFlagValidation:
    """Inapplicable flags are rejected (exit 2), not silently dropped."""

    def test_steps_rejected_for_sweep_experiment(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig4", "--steps", "10"])
        assert exc.value.code == 2
        assert "--steps" in capsys.readouterr().err

    def test_output_rejected_outside_report(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig4", "--output", "x.md"])
        assert exc.value.code == 2
        assert "--output" in capsys.readouterr().err

    def test_stray_target_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig4", "table2"])
        assert exc.value.code == 2

    def test_quick_warns_on_non_sweep(self, capsys):
        assert main(["abl-queue", "--quick"]) == 0
        assert "warning: --quick" in capsys.readouterr().err

    def test_negative_max_retries_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig4", "--quick", "--max-retries", "-1"])
        assert exc.value.code == 2


class TestProfile:
    def test_profile_requires_target(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["profile"])
        assert exc.value.code == 2

    def test_profile_unknown_target(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "fig99"])
        assert exc.value.code == 2

    def test_profile_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert (
            main(
                [
                    "profile",
                    "table2",
                    "--quick",
                    "--steps",
                    "5",
                    "--trace-out",
                    str(trace),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "## Span summary" in out
        doc = json.loads(trace.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        snap = json.loads(metrics.read_text())
        assert snap["interactions_total"]["value"] > 0
        # tracing is switched back off after the command
        assert not obs.enabled

    def test_trace_flag_writes_default_path(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["fig4", "--quick", "--trace"]) == 0
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert doc["otherData"]["n_spans"] > 0
        assert not obs.enabled


class TestRunResume:
    def test_run_writes_checkpoints_and_summary(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert (
            main(
                [
                    "run",
                    "--n", "64",
                    "--plan", "j",
                    "--steps", "6",
                    "--checkpoint-every", "2",
                    "--out", str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "run complete" in text
        assert "steps=6" in text
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["status"] == "complete"
        assert [c["step"] for c in manifest["checkpoints"]] == [2, 4, 6]

    def test_resume_extends_target(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert (
            main(
                ["run", "--n", "64", "--plan", "j", "--steps", "4",
                 "--checkpoint-every", "2", "--out", str(out)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["resume", str(out), "--steps", "8"]) == 0
        text = capsys.readouterr().out
        assert "steps=8" in text
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["target_steps"] == 8
        assert manifest["status"] == "complete"

    def test_resume_missing_dir_raises(self, tmp_path):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            main(["resume", str(tmp_path / "nope")])


@pytest.mark.cli
class TestCheckCommand:
    """repro-nbody check: the verification battery as a CI gate."""

    def _run_check(self, *extra):
        return main(
            [
                "check",
                "--n", "48",
                "--plans", "i,jw",
                "--backends", "serial,thread",
                "--steps", "4",
                *extra,
            ]
        )

    def test_check_passes_and_writes_json(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert self._run_check("--json", str(report_path)) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "bit-identical" in out
        doc = json.loads(report_path.read_text())
        assert doc["ok"] is True
        assert doc["matrix_ok"] and doc["invariants_ok"]
        # 2 plans x (1 cross-plan row + 1 parallel backend row)
        assert len(doc["matrix"]) == 4
        assert {row["plan"] for row in doc["invariants"]} == {"i", "jw"}

    def test_check_golden_bless_then_verify(self, tmp_path, capsys):
        golden = tmp_path / "golden"
        assert self._run_check("--golden", str(golden), "--bless") == 0
        assert "blessed" in capsys.readouterr().out
        assert self._run_check("--golden", str(golden)) == 0
        assert "match" in capsys.readouterr().out

    def test_check_golden_mismatch_fails(self, tmp_path, capsys):
        golden = tmp_path / "golden"
        assert self._run_check("--golden", str(golden), "--bless") == 0
        capsys.readouterr()
        # a different trajectory against the same blessed cases
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "check",
                    "--n", "48",
                    "--plans", "i,jw",
                    "--backends", "serial",
                    "--steps", "4",
                    "--seed", "1",
                    "--golden", str(golden),
                ]
            )
        assert exc.value.code == 1
        assert "missing" in capsys.readouterr().out  # different case ids

    def test_unknown_plan_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--plans", "i,nope"])
        assert exc.value.code == 2
        assert "unknown plan" in capsys.readouterr().err

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--backends", "serial,gpu"])
        assert exc.value.code == 2

    def test_bless_requires_golden(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--bless"])
        assert exc.value.code == 2
        assert "--golden" in capsys.readouterr().err

    def test_check_passes_through_compat(self):
        assert _compat_argv(["check", "--n", "48"]) == ["check", "--n", "48"]

    def test_check_rejects_unknown_kernel_backend_csv(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--kernel-backends", "numpy,fortran77"])
        assert exc.value.code == 2
        assert "fortran77" in capsys.readouterr().err

    def test_unknown_kernel_backend_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--n", "32", "--steps", "1", "--kernel-backend", "nope"])
        assert exc.value.code == 2
        assert "nope" in capsys.readouterr().err

    def test_kernel_backend_flag_configures(self, tmp_path):
        from repro.nbody.kernels import settings as kernel_settings

        try:
            assert main([
                "run", "--n", "32", "--steps", "1",
                "--out", str(tmp_path / "run"),
                "--kernel-backend", "numpy",
            ]) == 0
            assert kernel_settings.kernel_backend_name() == "numpy"
        finally:
            kernel_settings.clear_overrides()


@pytest.mark.cli
@pytest.mark.serve
class TestServeCommand:
    """repro-nbody serve: error paths get distinct exit codes."""

    def _jobs_file(self, tmp_path, jobs):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(jobs))
        return str(path)

    def _job(self, **kw):
        base = dict(
            workload="plummer", n=64, seed=1, plan="j", dt=1e-3, steps=3
        )
        base.update(kw)
        return base

    def test_serve_batch_completes(self, tmp_path, capsys):
        jobs = self._jobs_file(
            tmp_path, [self._job(seed=1), self._job(seed=2)]
        )
        assert (
            main(
                ["serve", "--jobs", jobs, "--cache-dir", str(tmp_path / "c")]
            )
            == 0
        )
        assert "2/2 jobs complete" in capsys.readouterr().out

    def test_malformed_jobs_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text("{ not json [")
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--jobs", str(path)])
        assert exc.value.code == 2
        assert "cannot read job file" in capsys.readouterr().err

    def test_invalid_spec_field_exits_2(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path, [self._job(plan="nope")])
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--jobs", str(jobs)])
        assert exc.value.code == 2
        assert "job 0" in capsys.readouterr().err

    def test_admission_rejection_exits_3(self, tmp_path, capsys):
        # capacity-1 queue, one runner: one live + one queued, so with
        # long-running jobs a later submission must be rejected.
        jobs = self._jobs_file(
            tmp_path,
            [self._job(seed=s, steps=60) for s in range(1, 7)],
        )
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "serve",
                    "--jobs", jobs,
                    "--cache-dir", str(tmp_path / "c"),
                    "--queue-capacity", "1",
                    "--max-concurrent", "1",
                ]
            )
        assert exc.value.code == 3
        assert "rejected" in capsys.readouterr().err


class TestServeSubcommands:
    """The PR-8 serve surface: subcommands, compat rewrites, distrib."""

    def test_compat_flat_serve_rewrites_to_batch(self):
        parser = build_parser()
        assert _compat_argv(["serve", "--jobs", "j.json"], parser) == [
            "serve", "batch", "--jobs", "j.json",
        ]
        # Explicit subcommands pass through untouched.
        assert _compat_argv(["serve", "batch", "--jobs", "j.json"], parser) == [
            "serve", "batch", "--jobs", "j.json",
        ]
        assert _compat_argv(
            ["serve", "worker", "--addr", "h:1"], parser
        ) == ["serve", "worker", "--addr", "h:1"]

    def test_compat_flat_submit_rewrites(self):
        parser = build_parser()
        assert _compat_argv(["submit", "--n", "64"], parser) == [
            "serve", "submit", "--n", "64",
        ]

    def test_flat_submit_with_batch_flags_is_ambiguous(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["submit", "--n", "64", "--jobs", "j.json"])
        assert exc.value.code == 2
        assert "ambiguous flat 'submit'" in capsys.readouterr().err

    def test_serve_submit_runs_one_spec(self, tmp_path, capsys):
        assert main(
            [
                "serve", "submit", "--n", "64", "--plan", "j",
                "--seed", "3", "--steps", "3",
                "--cache-dir", str(tmp_path / "c"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "complete" in out

    def test_flat_submit_still_runs(self, tmp_path, capsys):
        assert main(
            [
                "submit", "--n", "64", "--steps", "3",
                "--cache-dir", str(tmp_path / "c"),
            ]
        ) == 0
        assert "complete" in capsys.readouterr().out

    def test_serve_batch_local_keyword_forces_in_process(
        self, tmp_path, capsys, monkeypatch
    ):
        # An env-configured coordinator address must not leak into a
        # run that explicitly asked for the in-process service.
        monkeypatch.setenv("REPRO_SERVE_ADDR", "203.0.113.1:1")
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            dict(workload="plummer", n=64, seed=1, plan="j", dt=1e-3, steps=3)
        ]))
        assert main(
            [
                "serve", "batch", "--jobs", str(jobs), "--addr", "local",
                "--cache-dir", str(tmp_path / "c"),
            ]
        ) == 0
        assert "1/1 jobs complete" in capsys.readouterr().out

    def test_merge_shards_combines_ledgers(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger
        from repro.serve import Client

        shards = []
        for shard, seed in (("shard-a", 1), ("shard-b", 2)):
            path = tmp_path / f"{shard}.sqlite"
            with RunLedger(path) as ledger:
                with pytest.warns(DeprecationWarning):
                    client = Client(
                        cache_dir=tmp_path / "cache",
                        ledger=ledger, shard=shard,
                    )
                with client:
                    client.run(
                        workload="plummer", n=64, seed=seed,
                        plan="j", dt=1e-3, steps=3,
                    )
            shards.append(str(path))
        merged = tmp_path / "merged.sqlite"
        assert main(["serve", "merge-shards", *shards, "--out", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "shard-a" in out and "shard-b" in out
        with RunLedger(merged) as ledger:
            assert ledger.counts()["runs"] == 2

    def test_merge_shards_missing_input_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "serve", "merge-shards", str(tmp_path / "nope.sqlite"),
                    "--out", str(tmp_path / "m.sqlite"),
                ]
            )
        assert exc.value.code == 2

    def test_worker_requires_addr(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "worker"])
        assert exc.value.code == 2

    def test_coordinator_and_worker_roundtrip(self, tmp_path, capsys):
        # In-process variant of the CI job: coordinator object + CLI
        # worker command with an idle timeout, then a remote batch.
        import threading

        from repro.serve import Coordinator

        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            dict(workload="plummer", n=64, seed=s, plan="j", dt=1e-3, steps=3)
            for s in (1, 2)
        ]))
        with Coordinator(
            cache_dir=tmp_path / "cache", ledger=False
        ) as coord:
            worker = threading.Thread(
                target=main,
                args=(
                    [
                        "serve", "worker", "--addr", coord.addr,
                        "--shard", "cli-shard",
                        "--cache-dir", str(tmp_path / "cache"),
                        "--max-idle-s", "1.5",
                    ],
                ),
            )
            worker.start()
            try:
                assert main(
                    ["serve", "batch", "--jobs", str(jobs),
                     "--addr", coord.addr]
                ) == 0
            finally:
                worker.join(timeout=60)
            assert not worker.is_alive()
        out = capsys.readouterr().out
        assert "2/2 jobs complete" in out


class TestTopAndReport:
    """repro-nbody top / report over the durable run ledger."""

    @pytest.fixture(autouse=True)
    def _clean_ledger(self, monkeypatch):
        from repro.obs.settings import clear_overrides

        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        clear_overrides()
        yield
        clear_overrides()

    def _run_with_ledger(self, tmp_path):
        ledger_dir = tmp_path / "ledger"
        assert main(
            [
                "run", "--n", "48", "--plan", "i", "--steps", "6",
                "--checkpoint-every", "3",
                "--out", str(tmp_path / "run"),
                "--ledger-dir", str(ledger_dir),
            ]
        ) == 0
        return ledger_dir

    def test_top_requires_a_ledger(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["top", "--once"])
        assert exc.value.code == 2
        assert "no ledger" in capsys.readouterr().err

    def test_top_once_renders_runs(self, tmp_path, capsys):
        ledger_dir = self._run_with_ledger(tmp_path)
        capsys.readouterr()
        assert main(["top", "--once", "--ledger-dir", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 runs" in out
        assert "complete" in out and " i " in out and "6/6" in out

    def test_top_env_var_resolution(self, tmp_path, capsys, monkeypatch):
        ledger_dir = self._run_with_ledger(tmp_path)
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        capsys.readouterr()
        assert main(["top", "--once"]) == 0
        assert "complete" in capsys.readouterr().out

    def test_report_markdown(self, tmp_path, capsys):
        ledger_dir = self._run_with_ledger(tmp_path)
        out_path = tmp_path / "log.md"
        assert main(
            ["report", "--ledger-dir", str(ledger_dir), "--out", str(out_path)]
        ) == 0
        text = out_path.read_text()
        assert text.startswith("# Run ledger report")
        assert "## Per-plan summary" in text and "| i |" in text
        assert "command" in text  # the run invocation was recorded

    def test_report_html_inferred_from_suffix(self, tmp_path, capsys):
        ledger_dir = self._run_with_ledger(tmp_path)
        out_path = tmp_path / "log.html"
        assert main(
            ["report", "--ledger-dir", str(ledger_dir), "--out", str(out_path)]
        ) == 0
        text = out_path.read_text()
        assert text.startswith("<!DOCTYPE html>") and "<table>" in text

    def test_report_stdout_default(self, tmp_path, capsys):
        ledger_dir = self._run_with_ledger(tmp_path)
        capsys.readouterr()
        assert main(["report", "--ledger-dir", str(ledger_dir)]) == 0
        assert "# Run ledger report" in capsys.readouterr().out

    def test_flat_report_still_reaches_bench(self):
        assert _compat_argv(["report", "--quick", "--output", "x.md"]) == [
            "bench", "report", "--quick", "--output", "x.md"
        ]
        assert _compat_argv(["report", "--out", "x.md"]) == [
            "report", "--out", "x.md"
        ]
        assert _compat_argv(["top", "--once"]) == ["top", "--once"]

    def test_flat_report_with_mixed_flags_is_ambiguous(self, capsys):
        # Bench flags (--quick/--output) and ledger flags (--out/--format)
        # in one flat 'report' can't be routed to either subcommand; the
        # CLI must refuse loudly (exit 2) instead of guessing.
        with pytest.raises(SystemExit) as exc:
            _compat_argv(["report", "--quick", "--out", "x.md"])
        assert exc.value.code == 2

        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(["report", "--quick", "--out", "x.md"])
        assert exc.value.code == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_prometheus_out_flag(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        assert main(
            [
                "run", "--n", "48", "--plan", "i", "--steps", "3",
                "--out", str(tmp_path / "run"),
                "--trace-out", str(tmp_path / "t.json"),
                "--prometheus-out", str(prom),
            ]
        ) == 0
        text = prom.read_text()
        assert "# TYPE" in text
        assert "prometheus metrics written" in capsys.readouterr().out

"""Unit tests for the host CPU cost model."""

import pytest

from repro.core.hostmodel import PENTIUM_E5300, HostCpuModel


class TestForceSeconds:
    def test_rate(self):
        host = HostCpuModel(effective_force_flops=1e9)
        # 1e9 interactions x 20 flops at 1 GFLOPS = 20 s
        assert host.force_seconds(10**9) == pytest.approx(20.0)

    def test_convention(self):
        host = HostCpuModel(effective_force_flops=1e9)
        assert host.force_seconds(10**9, 38) == pytest.approx(38.0)

    def test_zero_interactions_free(self):
        assert PENTIUM_E5300.force_seconds(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PENTIUM_E5300.force_seconds(-1)


class TestHostCosts:
    def test_tree_linear_in_n(self):
        t1 = PENTIUM_E5300.tree_build_seconds(1000)
        t2 = PENTIUM_E5300.tree_build_seconds(2000)
        assert t2 == pytest.approx(2 * t1)

    def test_walk_generation_components(self):
        host = HostCpuModel(walk_ns_per_list_item=10.0, walk_ns_per_walk=1000.0)
        t = host.walk_generation_seconds(5, 1000)
        assert t == pytest.approx(5 * 1000e-9 + 1000 * 10e-9)

    def test_integration_linear(self):
        t = PENTIUM_E5300.integration_seconds(10**6)
        assert t == pytest.approx(10**6 * PENTIUM_E5300.integrate_ns_per_body * 1e-9)

    def test_rejects_negatives(self):
        with pytest.raises(ValueError):
            PENTIUM_E5300.tree_build_seconds(-1)
        with pytest.raises(ValueError):
            PENTIUM_E5300.walk_generation_seconds(-1, 0)
        with pytest.raises(ValueError):
            PENTIUM_E5300.integration_seconds(-1)


class TestCalibrationSanity:
    def test_effective_gflops_sub_ghz(self):
        # a Pentium-era scalar loop sustains well under 1 GFLOPS
        assert 0.1 < PENTIUM_E5300.effective_gflops < 1.0

    def test_construction_validates(self):
        with pytest.raises(ValueError):
            HostCpuModel(effective_force_flops=0.0)
        with pytest.raises(ValueError):
            HostCpuModel(tree_ns_per_body=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            PENTIUM_E5300.clock_hz = 1.0  # type: ignore[misc]

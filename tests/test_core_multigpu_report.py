"""Tests for the multi-device jw plan and the report generator."""

import numpy as np
import pytest

from repro.core import JwParallelPlan, MultiDeviceJwPlan, PlanConfig
from repro.errors import ConfigurationError
from repro.nbody.ic import plummer
from repro.tree.bh_force import rms_relative_error

EPS = 1e-2


class TestMultiDeviceJw:
    def test_one_device_matches_jw(self):
        p = plummer(4096, seed=71)
        cfg = PlanConfig(softening=EPS)
        b1 = JwParallelPlan(cfg).step_breakdown(p.positions, p.masses)
        bm = MultiDeviceJwPlan(cfg, n_devices=1).step_breakdown(p.positions, p.masses)
        assert bm.kernel_seconds == pytest.approx(b1.kernel_seconds, rel=1e-9)
        assert bm.total_seconds == pytest.approx(b1.total_seconds, rel=1e-9)

    def test_kernel_scales_with_devices(self):
        p = plummer(65536, seed=71)
        cfg = PlanConfig(softening=EPS)
        k1 = MultiDeviceJwPlan(cfg, n_devices=1).step_breakdown(p.positions, p.masses)
        k4 = MultiDeviceJwPlan(cfg, n_devices=4).step_breakdown(p.positions, p.masses)
        assert k1.kernel_seconds / k4.kernel_seconds > 2.5

    def test_total_saturates_at_host_ceiling(self):
        p = plummer(65536, seed=71)
        cfg = PlanConfig(softening=EPS)
        totals = [
            MultiDeviceJwPlan(cfg, n_devices=d)
            .step_breakdown(p.positions, p.masses)
            .total_seconds
            for d in (1, 4, 16)
        ]
        assert totals[0] > totals[1] >= totals[2] * 0.9
        # far from linear: host walk generation does not scale
        assert totals[0] / totals[2] < 4.0

    def test_host_seconds_independent_of_devices(self):
        p = plummer(16384, seed=72)
        cfg = PlanConfig(softening=EPS)
        h1 = MultiDeviceJwPlan(cfg, n_devices=1).step_breakdown(p.positions, p.masses)
        h8 = MultiDeviceJwPlan(cfg, n_devices=8).step_breakdown(p.positions, p.masses)
        assert h1.host_seconds == pytest.approx(h8.host_seconds, rel=1e-12)

    def test_functional_identical_to_jw(self):
        p = plummer(512, seed=73)
        cfg = PlanConfig(softening=EPS)
        a1 = JwParallelPlan(cfg).accelerations(p.positions, p.masses)
        a2 = MultiDeviceJwPlan(cfg, n_devices=4).accelerations(p.positions, p.masses)
        # same walks, same lists; only j-split segmentation may differ,
        # so agreement is at float32 summation-order level
        assert rms_relative_error(a2, a1) < 1e-5

    def test_plan_name_and_meta(self):
        p = plummer(1024, seed=74)
        b = MultiDeviceJwPlan(PlanConfig(softening=EPS), n_devices=2).step_breakdown(
            p.positions, p.masses
        )
        assert b.plan == "jw-multi"
        assert b.meta["n_devices"] == 2

    def test_rejects_zero_devices(self):
        with pytest.raises(ConfigurationError):
            MultiDeviceJwPlan(PlanConfig(), n_devices=0)


class TestReportGenerator:
    def test_generates_selected_experiments(self, tmp_path):
        from repro.bench.report import generate_report

        out = generate_report(
            tmp_path / "rep.md", quick=True, experiments=["abl-queue"]
        )
        text = out.read_text()
        assert "# PTPM N-body reproduction report" in text
        assert "abl-queue" in text
        assert "dynamic" in text

    def test_unknown_experiment_rejected(self, tmp_path):
        from repro.bench.report import generate_report

        with pytest.raises(KeyError, match="unknown"):
            generate_report(tmp_path / "rep.md", experiments=["fig99"])

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        # restrict via --quick; write to tmp to avoid polluting the repo
        out_path = tmp_path / "cli_report.md"
        assert main(["report", "--quick", "--output", str(out_path)]) == 0
        assert out_path.exists()
        assert "report written" in capsys.readouterr().out

"""Unit tests for the host/device pipeline model."""

import pytest

from repro.core.pipeline import (
    overlapped_pipeline,
    overlapped_pipeline3,
    serial_pipeline,
    split_batches,
)


class TestSerial:
    def test_total_is_sum(self):
        r = serial_pipeline(2.0, 3.0)
        assert r.total_seconds == 5.0
        assert not r.overlapped
        assert r.hidden_seconds == 0.0
        assert r.overlap_efficiency == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            serial_pipeline(-1.0, 1.0)


class TestTwoStage:
    def test_single_batch_is_serial(self):
        r = overlapped_pipeline([2.0], [3.0])
        assert r.total_seconds == 5.0

    def test_many_batches_approach_max(self):
        n = 100
        r = overlapped_pipeline([2.0 / n] * n, [3.0 / n] * n)
        # total -> max(2,3) + one host batch of startup
        assert r.total_seconds == pytest.approx(3.0 + 2.0 / n)

    def test_device_bound(self):
        r = overlapped_pipeline([0.1] * 10, [1.0] * 10)
        assert r.total_seconds == pytest.approx(0.1 + 10.0)

    def test_host_bound(self):
        r = overlapped_pipeline([1.0] * 10, [0.1] * 10)
        assert r.total_seconds == pytest.approx(10.0 + 0.1)

    def test_hidden_seconds(self):
        r = overlapped_pipeline([1.0] * 10, [1.0] * 10)
        assert r.hidden_seconds > 0
        assert 0.0 < r.overlap_efficiency <= 1.0

    def test_never_better_than_max_nor_worse_than_sum(self, rng):
        h = rng.uniform(0.1, 1.0, 20).tolist()
        d = rng.uniform(0.1, 1.0, 20).tolist()
        r = overlapped_pipeline(h, d)
        assert r.total_seconds >= max(sum(h), sum(d)) - 1e-12
        assert r.total_seconds <= sum(h) + sum(d) + 1e-12

    def test_empty(self):
        r = overlapped_pipeline([], [])
        assert r.total_seconds == 0.0

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="batch count"):
            overlapped_pipeline([1.0], [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            overlapped_pipeline([-1.0], [1.0])


class TestThreeStage:
    def test_bounded_by_slowest_stage(self, rng):
        c = rng.uniform(0.1, 1.0, 30).tolist()
        x = rng.uniform(0.1, 1.0, 30).tolist()
        g = rng.uniform(0.1, 1.0, 30).tolist()
        r = overlapped_pipeline3(c, x, g)
        assert r.total_seconds >= max(sum(c), sum(x), sum(g)) - 1e-12
        assert r.total_seconds <= sum(c) + sum(x) + sum(g) + 1e-12

    def test_steady_state(self):
        n = 200
        r = overlapped_pipeline3([1.0 / n] * n, [0.5 / n] * n, [2.0 / n] * n)
        assert r.total_seconds == pytest.approx(2.0 + 1.5 / n, rel=1e-6)

    def test_degenerate_zero_stage_matches_two_stage(self, rng):
        h = rng.uniform(0.1, 1.0, 10).tolist()
        d = rng.uniform(0.1, 1.0, 10).tolist()
        r3 = overlapped_pipeline3(h, [0.0] * 10, d)
        r2 = overlapped_pipeline(h, d)
        assert r3.total_seconds == pytest.approx(r2.total_seconds)

    def test_host_seconds_aggregates_feed_stages(self):
        r = overlapped_pipeline3([1.0], [2.0], [3.0])
        assert r.host_seconds == 3.0
        assert r.device_seconds == 3.0

    def test_empty(self):
        assert overlapped_pipeline3([], [], []).total_seconds == 0.0

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            overlapped_pipeline3([1.0], [1.0], [1.0, 2.0])


class TestSplitBatches:
    def test_split_sums(self):
        b = split_batches(10.0, 4)
        assert len(b) == 4
        assert sum(b) == pytest.approx(10.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            split_batches(1.0, 0)
        with pytest.raises(ValueError):
            split_batches(-1.0, 2)

"""Tests for the four PTPM plans: functional correctness and cost structure."""

import numpy as np
import pytest

from repro.core.plans import (
    IParallelPlan,
    JParallelPlan,
    JwParallelPlan,
    PlanConfig,
    WParallelPlan,
    plan_by_name,
)
from repro.errors import ConfigurationError
from repro.nbody.forces import direct_forces
from repro.nbody.ic import plummer
from repro.tree.bh_force import rms_relative_error

EPS = 1e-2
ALL_PLAN_CLASSES = [IParallelPlan, JParallelPlan, WParallelPlan, JwParallelPlan]


@pytest.fixture(scope="module")
def bodies():
    p = plummer(1024, seed=21)
    return p.positions, p.masses


@pytest.fixture(scope="module")
def reference(bodies):
    pos, m = bodies
    return direct_forces(pos, m, softening=EPS, include_self=False)


@pytest.fixture(scope="module")
def cfg():
    return PlanConfig(softening=EPS)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("plan_cls", [IParallelPlan, JParallelPlan])
    def test_pp_plans_match_direct_to_float32(self, plan_cls, bodies, reference, cfg):
        pos, m = bodies
        acc = plan_cls(cfg).accelerations(pos, m)
        assert rms_relative_error(acc, reference) < 1e-4

    @pytest.mark.parametrize("plan_cls", [WParallelPlan, JwParallelPlan])
    def test_tree_plans_match_direct_to_bh_accuracy(self, plan_cls, bodies, reference, cfg):
        pos, m = bodies
        acc = plan_cls(cfg).accelerations(pos, m)
        assert rms_relative_error(acc, reference) < 0.01

    def test_pp_plans_agree_with_each_other(self, bodies, cfg):
        pos, m = bodies
        a_i = IParallelPlan(cfg).accelerations(pos, m)
        a_j = JParallelPlan(cfg).accelerations(pos, m)
        assert rms_relative_error(a_j, a_i) < 1e-5

    def test_tree_plans_agree_closely(self, bodies, cfg):
        """w and jw share walks; only float32 summation order differs."""
        pos, m = bodies
        a_w = WParallelPlan(cfg).accelerations(pos, m)
        a_jw = JwParallelPlan(cfg).accelerations(pos, m)
        assert rms_relative_error(a_jw, a_w) < 1e-4

    @pytest.mark.parametrize("plan_cls", [IParallelPlan, JParallelPlan])
    def test_wg_size_does_not_change_pp_physics(self, plan_cls, bodies, cfg):
        pos, m = bodies
        a1 = plan_cls(PlanConfig(softening=EPS, wg_size=64)).accelerations(pos, m)
        a2 = plan_cls(PlanConfig(softening=EPS, wg_size=256)).accelerations(pos, m)
        assert rms_relative_error(a1, a2) < 1e-4

    @pytest.mark.parametrize("plan_cls", [WParallelPlan, JwParallelPlan])
    def test_wg_size_keeps_tree_plans_accurate(self, plan_cls, bodies, reference):
        # wg_size changes the walk grouping (hence the BH approximation),
        # but accuracy vs direct summation must stay at BH level
        pos, m = bodies
        for p in (64, 256):
            acc = plan_cls(PlanConfig(softening=EPS, wg_size=p)).accelerations(pos, m)
            assert rms_relative_error(acc, reference) < 0.01

    @pytest.mark.parametrize("plan_cls", ALL_PLAN_CLASSES)
    def test_compute_step_consistent(self, plan_cls, bodies, cfg):
        pos, m = bodies
        plan = plan_cls(cfg)
        acc, step = plan.compute_step(pos, m)
        acc2 = plan.accelerations(pos, m)
        np.testing.assert_allclose(acc, acc2, rtol=1e-12)
        assert step.interactions > 0


class TestCostStructure:
    @pytest.mark.parametrize("plan_cls", ALL_PLAN_CLASSES)
    def test_breakdown_fields(self, plan_cls, bodies, cfg):
        pos, m = bodies
        b = plan_cls(cfg).step_breakdown(pos, m)
        assert b.kernel_seconds > 0
        assert b.transfer_seconds > 0
        assert b.total_seconds >= b.kernel_seconds
        assert b.issued_interactions >= b.interactions
        assert b.n_bodies == len(m)

    def test_pp_interactions_are_n_squared(self, bodies, cfg):
        pos, m = bodies
        n = len(m)
        for cls in (IParallelPlan, JParallelPlan):
            assert cls(cfg).step_breakdown(pos, m).interactions == n * n

    def test_tree_interactions_below_n_squared_at_scale(self, cfg):
        p = plummer(8192, seed=3)
        b = JwParallelPlan(cfg).step_breakdown(p.positions, p.masses)
        assert b.interactions < 8192 * 8192

    def test_pp_plans_have_no_host_work(self, bodies, cfg):
        pos, m = bodies
        assert IParallelPlan(cfg).step_breakdown(pos, m).host_seconds == 0.0

    def test_tree_plans_have_host_work(self, bodies, cfg):
        pos, m = bodies
        assert WParallelPlan(cfg).step_breakdown(pos, m).host_seconds > 0.0

    def test_j_has_more_workgroups_than_i_at_small_n(self, bodies, cfg):
        pos, m = bodies
        bi = IParallelPlan(cfg).step_breakdown(pos, m)
        bj = JParallelPlan(cfg).step_breakdown(pos, m)
        assert bj.meta["n_workgroups"] > bi.meta["n_workgroups"]
        assert bj.meta["split_factor"] > 1

    def test_j_split_shrinks_at_large_n(self, cfg):
        p = plummer(16384, seed=4)
        plan = JParallelPlan(cfg)
        assert plan.split_factor(16384) < plan.split_factor(1024)

    def test_w_lane_utilization_below_jw(self, bodies, cfg):
        pos, m = bodies
        uw = WParallelPlan(cfg).step_breakdown(pos, m).meta["lane_utilization"]
        ujw = JwParallelPlan(cfg).step_breakdown(pos, m).meta["lane_utilization"]
        assert uw < 0.9
        assert ujw > 0.95

    def test_jw_overlap_reduces_total(self, bodies, cfg):
        pos, m = bodies
        on = JwParallelPlan(cfg, overlap=True).step_breakdown(pos, m)
        off = JwParallelPlan(cfg, overlap=False).step_breakdown(pos, m)
        assert on.total_seconds < off.total_seconds

    def test_run_timing_scales_linearly(self, bodies, cfg):
        pos, m = bodies
        plan = IParallelPlan(cfg)
        r100 = plan.run_timing(pos, m, n_steps=100)
        r10 = plan.run_timing(pos, m, n_steps=10)
        assert r100.total_seconds == pytest.approx(10 * r10.total_seconds)
        assert r100.interactions == 10 * r10.interactions

    def test_run_timing_rejects_bad_steps(self, bodies, cfg):
        pos, m = bodies
        with pytest.raises(ConfigurationError):
            IParallelPlan(cfg).run_timing(pos, m, n_steps=0)


class TestPaperShapes:
    """The headline qualitative claims, checked at moderate N."""

    def test_jw_fastest_total_at_4096(self, cfg):
        p = plummer(4096, seed=5)
        totals = {
            cls.name: cls(cfg).step_breakdown(p.positions, p.masses).total_seconds
            for cls in ALL_PLAN_CLASSES
        }
        assert totals["jw"] == min(totals.values())

    def test_jw_beats_w_by_paper_factor(self, cfg):
        p = plummer(16384, seed=5)
        tw = WParallelPlan(cfg).step_breakdown(p.positions, p.masses).total_seconds
        tjw = JwParallelPlan(cfg).step_breakdown(p.positions, p.masses).total_seconds
        assert 1.5 <= tw / tjw <= 5.0

    def test_i_parallel_occupancy_starved_at_small_n(self, cfg):
        p = plummer(1024, seed=5)
        b = IParallelPlan(cfg).step_breakdown(p.positions, p.masses)
        assert b.kernel_gflops() < 100  # far from the ~300 sustained

    def test_jw_sustains_high_gflops_at_small_n(self, cfg):
        p = plummer(1024, seed=5)
        b = JwParallelPlan(cfg).step_breakdown(p.positions, p.masses)
        assert b.kernel_gflops() > 150

    def test_plan_by_name(self, cfg):
        for name, cls in zip(("i", "j", "w", "jw"), ALL_PLAN_CLASSES):
            assert isinstance(plan_by_name(name, cfg), cls)
        with pytest.raises(ConfigurationError, match="unknown plan"):
            plan_by_name("nope")


class TestValidation:
    def test_rejects_bad_bodies(self, cfg):
        plan = IParallelPlan(cfg)
        with pytest.raises(ConfigurationError):
            plan.accelerations(np.zeros((2, 2)), np.ones(2))
        with pytest.raises(ConfigurationError):
            plan.accelerations(np.zeros((2, 3)), np.ones(3))
        with pytest.raises(ConfigurationError):
            plan.accelerations(np.zeros((0, 3)), np.ones(0))

    def test_config_validation(self):
        with pytest.raises(Exception):
            PlanConfig(wg_size=512)  # exceeds device max
        with pytest.raises(ConfigurationError):
            PlanConfig(softening=-1.0)
        with pytest.raises(ConfigurationError):
            PlanConfig(theta=0.0)
        with pytest.raises(ConfigurationError):
            PlanConfig(leaf_size=0)

    def test_jw_rejects_bad_batches(self, cfg):
        with pytest.raises(ValueError):
            JwParallelPlan(cfg, pipeline_batches=0)

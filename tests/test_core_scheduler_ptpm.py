"""Unit tests for walk scheduling policies and the PTPM descriptors."""

import numpy as np
import pytest

from repro.core.ptpm import (
    PLAN_NAMES,
    Mapping,
    comparison_table,
    describe,
)
from repro.core.scheduler import POLICIES, schedule_walks
from repro.errors import ConfigurationError


class TestScheduleWalks:
    def test_policies_exist(self):
        assert set(POLICIES) == {"static", "dynamic", "dynamic-lpt"}

    def test_uniform_work_all_equal(self):
        costs = np.ones(36)
        outcomes = [schedule_walks(costs, 18, p) for p in POLICIES]
        for o in outcomes:
            assert o.makespan == pytest.approx(2.0)
            assert o.balance_efficiency == pytest.approx(1.0)

    def test_skewed_work_ordering(self, rng):
        costs = rng.pareto(1.5, 500) + 0.1
        st = schedule_walks(costs, 18, "static")
        dy = schedule_walks(costs, 18, "dynamic")
        lpt = schedule_walks(costs, 18, "dynamic-lpt")
        assert lpt.makespan <= dy.makespan + 1e-9
        assert dy.makespan <= st.makespan + 1e-9

    def test_outcome_accounting(self, rng):
        costs = rng.uniform(1, 3, 100)
        o = schedule_walks(costs, 10, "dynamic")
        assert o.total_work == pytest.approx(costs.sum())
        assert o.n_items == 100
        assert 0.0 <= o.idle_fraction < 1.0
        assert o.idle_fraction == pytest.approx(1.0 - o.balance_efficiency)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="policy"):
            schedule_walks(np.ones(3), 2, "roulette")

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigurationError):
            schedule_walks(np.array([-1.0]), 2, "dynamic")


class TestPtpmDescriptors:
    def test_all_plans_described(self):
        for name in PLAN_NAMES:
            d = describe(name)
            assert d.name == name

    def test_methods(self):
        assert describe("i").method == "pp"
        assert describe("j").method == "pp"
        assert describe("w").method == "bh"
        assert describe("jw").method == "bh"

    def test_i_parallel_predictions(self):
        d = describe("i")
        assert d.predicts_occupancy_starvation_at_small_n
        assert not d.predicts_reduction_overhead
        assert not d.predicts_serial_host_bottleneck

    def test_j_parallel_predictions(self):
        d = describe("j")
        assert not d.predicts_occupancy_starvation_at_small_n
        assert d.predicts_reduction_overhead

    def test_w_parallel_predictions(self):
        d = describe("w")
        assert d.predicts_lane_underutilization
        assert d.predicts_serial_host_bottleneck
        assert not d.predicts_reduction_overhead

    def test_jw_parallel_predictions(self):
        d = describe("jw")
        assert not d.predicts_lane_underutilization
        assert not d.predicts_serial_host_bottleneck
        assert d.predicts_reduction_overhead
        assert d.dynamic_queue
        assert d.host_device_overlap

    def test_unknown_plan(self):
        with pytest.raises(ConfigurationError):
            describe("z")

    def test_comparison_table_shape(self):
        table = comparison_table()
        assert [r["plan"] for r in table] == list(PLAN_NAMES)
        assert all({"plan", "method", "i", "j", "walk", "overlap", "queue"} <= set(r) for r in table)

    def test_mappings_enum_values(self):
        assert Mapping.BLOCK.value == "block"
        assert Mapping.BLOCK_THREAD.value == "block+thread"

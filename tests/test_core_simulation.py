"""Tests for the high-level Simulation driver."""

import numpy as np
import pytest

from repro.core.plans import IParallelPlan, JwParallelPlan, PlanConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError, ReproError, StateError
from repro.nbody.energy import total_energy
from repro.nbody.forces import direct_forces
from repro.nbody.ic import plummer
from repro.nbody.integrators import LeapfrogKDK, integrate

EPS = 1e-2


@pytest.fixture()
def sim():
    particles = plummer(256, seed=31)
    return Simulation(particles, IParallelPlan(PlanConfig(softening=EPS)), dt=1e-3)


class TestStepping:
    def test_step_advances_time(self, sim):
        sim.step()
        assert sim.time == pytest.approx(1e-3)
        sim.step()
        assert sim.time == pytest.approx(2e-3)

    def test_record_accumulates(self, sim):
        sim.run(3)
        # first step costs two force evaluations (cold start), then one each
        assert sim.record.steps == 3
        assert sim.record.force_passes == 4
        assert sim.record.simulated_seconds > 0
        assert sim.record.interactions == 4 * 256 * 256
        assert sim.record.mean_step_seconds > 0
        # mean is per leapfrog step, not per force pass
        assert sim.record.mean_step_seconds == pytest.approx(
            sim.record.simulated_seconds / 3
        )

    def test_matches_plain_integrate(self):
        """The driver reproduces the generic leapfrog trajectory."""
        cfg = PlanConfig(softening=EPS)
        p1 = plummer(128, seed=32)
        p2 = p1.copy()
        sim = Simulation(p1, IParallelPlan(cfg), dt=1e-3)
        sim.run(5)

        plan = IParallelPlan(cfg)
        integrate(
            p2, plan.accel_fn(p2.masses), dt=1e-3, n_steps=5, integrator=LeapfrogKDK()
        )
        np.testing.assert_allclose(p1.positions, p2.positions, rtol=1e-10, atol=1e-12)

    def test_energy_conservation_short_run(self):
        particles = plummer(256, seed=33)
        e0 = total_energy(particles, softening=EPS)
        sim = Simulation(particles, IParallelPlan(PlanConfig(softening=EPS)), dt=1e-3)
        sim.run(20)
        e1 = total_energy(particles, softening=EPS)
        assert abs(e1 - e0) / abs(e0) < 5e-3

    def test_tree_plan_drives_simulation(self):
        particles = plummer(512, seed=34)
        sim = Simulation(particles, JwParallelPlan(PlanConfig(softening=EPS)), dt=1e-3)
        rec = sim.run(2)
        assert rec.steps == 2
        assert rec.force_passes == 3
        assert all(b.plan == "jw" for b in rec.breakdowns)

    def test_forces_consistent_with_direct(self):
        particles = plummer(256, seed=35)
        sim = Simulation(particles, IParallelPlan(PlanConfig(softening=EPS)), dt=1e-4)
        sim.step()
        ref = direct_forces(
            particles.positions, particles.masses, softening=EPS, include_self=False
        )
        acc = sim._last_acc
        err = np.linalg.norm(acc - ref, axis=1) / np.linalg.norm(ref, axis=1)
        assert err.max() < 1e-3


class TestCallbacks:
    def test_callback_invoked(self, sim):
        seen = []
        sim.run(4, callback=lambda s: seen.append(s.time), callback_every=2)
        assert len(seen) == 2
        assert seen[-1] == pytest.approx(4e-3)

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            sim.run(0)
        with pytest.raises(ConfigurationError):
            sim.run(1, callback_every=0)

    def test_bad_dt(self):
        with pytest.raises(ConfigurationError):
            Simulation(plummer(8, seed=1), IParallelPlan(), dt=0.0)

    def test_empty_record_raises_state_error(self, sim):
        # an empty record is a *state* problem, not a configuration one
        with pytest.raises(StateError):
            _ = sim.record.mean_step_seconds
        assert not issubclass(StateError, ConfigurationError)
        assert issubclass(StateError, ReproError)

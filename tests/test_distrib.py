"""Tests for the distributed serve tier: coordinator, workers, merge.

The contracts under test:

1. the wire layer frames JSON messages, round-trips addresses, and
   reconstructs :mod:`repro.errors` classes client-side;
2. a coordinator plus N worker shards completes a batch with results
   **bit-identical** to solo runs (results travel as run-directory
   paths over the shared cache, never serialized state);
3. killing a worker mid-run requeues its claimed jobs (``retries``
   incremented) and a surviving shard resumes from the orphaned
   checkpoint — final state still bit-identical;
4. ``RunLedger.merge`` folds per-shard databases into one experiment
   database with remapped (collision-free) run ids and conserved
   run/slice/event counts;
5. :func:`repro.serve.connect` yields the same ``Client`` surface for
   both transports, resolves the address through settings/env, and the
   deprecated direct constructors warn exactly once.
"""

import socket
import time
import warnings

import pytest

from repro.check import assert_bit_identical
from repro.errors import AdmissionError, CheckpointError, ServeError
from repro.obs.ledger import RunLedger
from repro.serve import (
    Client,
    Coordinator,
    JobService,
    JobSpec,
    RemoteHandle,
    RemoteService,
    SubmitOptions,
    Worker,
    connect,
)
from repro.serve.settings import ENV_ADDR, clear_overrides, set_overrides
from repro.serve.wire import (
    decode_error,
    encode_error,
    format_addr,
    parse_addr,
    recv_msg,
    send_msg,
)
from tests.conftest import small_spec, solo_state

pytestmark = [
    pytest.mark.serve,
    # Direct JobService/Client construction inside helpers is deliberate
    # here; the deprecation contract itself is tested explicitly below.
    pytest.mark.filterwarnings("ignore::DeprecationWarning"),
]

_WAIT = 60.0


def _poll(predicate, timeout=_WAIT, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------

class TestWire:
    def test_send_recv_roundtrip(self):
        a, b = socket.socketpair()
        try:
            msg = {"op": "submit", "spec": {"n": 128}, "nested": [1, 2, 3]}
            send_msg(a, msg)
            assert recv_msg(b) == msg
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_mid_message_eof_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10partial")
            a.close()
            with pytest.raises(ServeError, match="mid-message"):
                recv_msg(b)
        finally:
            b.close()

    def test_oversized_header_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ServeError, match="limit"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_parse_addr(self):
        assert parse_addr("127.0.0.1:7464") == ("127.0.0.1", 7464)
        assert format_addr(("10.0.0.2", 80)) == "10.0.0.2:80"
        for bad in ("nocolon", ":7464", "host:notaport", "host:70000"):
            with pytest.raises(ServeError):
                parse_addr(bad)

    def test_error_codec_roundtrips_library_errors(self):
        rebuilt = decode_error(encode_error(AdmissionError("queue full")))
        assert isinstance(rebuilt, AdmissionError)
        assert "queue full" in str(rebuilt)
        rebuilt = decode_error(encode_error(CheckpointError("bad manifest")))
        assert isinstance(rebuilt, CheckpointError)

    def test_error_codec_foreign_class_becomes_serve_error(self):
        rebuilt = decode_error(encode_error(ValueError("boom")))
        assert isinstance(rebuilt, ServeError)
        assert "ValueError" in str(rebuilt) and "boom" in str(rebuilt)


# ---------------------------------------------------------------------------
# Coordinator + workers end-to-end
# ---------------------------------------------------------------------------

class TestDistributedBatch:
    def test_two_shards_complete_batch_bit_identical(self, tmp_path):
        specs = [
            small_spec(seed=s, plan=p)
            for s, p in [(1, "jw"), (2, "i"), (3, "w"), (4, "j")]
        ]
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            with (
                Worker(coord.addr, "shard-a", cache_dir=tmp_path, ledger=False),
                Worker(coord.addr, "shard-b", cache_dir=tmp_path, ledger=False),
            ):
                with connect(coord.addr) as client:
                    results = client.map(specs, timeout=_WAIT)
            for spec, result in zip(specs, results):
                pos, vel, sim_time = solo_state(spec)
                assert_bit_identical(pos, result.positions)
                assert_bit_identical(vel, result.velocities)
                assert result.time == sim_time
                assert not result.from_cache
            described = coord.describe()
            assert described["jobs"] == {"done": len(specs)}
            assert described["workers"] == ["shard-a", "shard-b"]

    def test_completed_spec_is_cache_hit_for_every_shard(self, tmp_path):
        spec = small_spec(seed=9)
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            with Worker(coord.addr, "shard-a", cache_dir=tmp_path, ledger=False):
                with connect(coord.addr) as client:
                    first = client.run(spec, timeout=_WAIT)
                    again = client.run(spec, timeout=_WAIT)
            assert not first.from_cache
            assert again.from_cache
            assert coord.describe()["cache_hits"] == 1
            assert_bit_identical(first.positions, again.positions)

    def test_inflight_submissions_coalesce(self, tmp_path):
        spec = small_spec(seed=10, steps=30, checkpoint_every=5)
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            with connect(coord.addr) as client:
                h1 = client.submit(spec)
                h2 = client.submit(spec)
                assert h2.dedup_count == 1
                assert coord.describe()["deduped"] == 1
                # Only now let a worker pick the (single) queued job up.
                with Worker(
                    coord.addr, "shard-a", cache_dir=tmp_path, ledger=False
                ):
                    r1 = h1.result(timeout=_WAIT)
                    r2 = h2.result(timeout=_WAIT)
            assert_bit_identical(r1.positions, r2.positions)

    def test_queue_capacity_rejects_with_admission_error(self, tmp_path):
        with Coordinator(
            cache_dir=tmp_path, queue_capacity=1, ledger=False
        ) as coord:
            with connect(coord.addr) as client:
                client.submit(small_spec(seed=21))
                with pytest.raises(AdmissionError, match="full"):
                    client.submit(small_spec(seed=22))

    def test_engine_options_rejected_over_the_wire(self, tmp_path):
        from repro.exec import RetryPolicy

        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            with connect(coord.addr) as client:
                with pytest.raises(ServeError, match="retry"):
                    client.submit(small_spec(), retry=RetryPolicy(max_retries=1))


# ---------------------------------------------------------------------------
# Fault tolerance: kill a shard mid-run
# ---------------------------------------------------------------------------

class TestKillWorkerMidRun:
    def test_killed_shard_requeues_and_survivor_resumes_bit_identical(
        self, tmp_path
    ):
        spec = small_spec(n=96, seed=7, steps=40, checkpoint_every=5)
        spec_hash = spec.spec_hash()
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            w1 = Worker(
                coord.addr, "shard-a", cache_dir=tmp_path,
                ledger=False, steps_per_slice=2,
            ).start()
            with connect(coord.addr) as client:
                handle = client.submit(spec)
                # Wait until shard-a is mid-run with at least one
                # checkpoint on disk, then crash it.
                entry = coord.cache.entry_dir(spec)
                assert _poll(
                    lambda: coord._jobs[spec_hash].status == "running"
                    and any(entry.glob("ckpt_*"))
                ), "shard-a never started checkpointing"
                w1.kill()
                # The socket drop requeues the claimed job.
                assert _poll(
                    lambda: coord._jobs[spec_hash].status == "queued"
                ), "job was not requeued after worker loss"
                assert coord._jobs[spec_hash].retries == 1
                with Worker(
                    coord.addr, "shard-b", cache_dir=tmp_path, ledger=False
                ):
                    result = handle.result(timeout=_WAIT)
                # Bit-identical to an uninterrupted solo run: shard-b
                # resumed shard-a's orphan rather than starting over.
                pos, vel, sim_time = solo_state(spec)
                assert_bit_identical(pos, result.positions)
                assert_bit_identical(vel, result.velocities)
                assert result.time == sim_time
                assert result.steps == spec.steps
                # And the finished entry serves future submissions.
                again = client.run(spec, timeout=_WAIT)
                assert again.from_cache


# ---------------------------------------------------------------------------
# merge-shards: per-shard ledgers -> one experiment database
# ---------------------------------------------------------------------------

class TestMergeShards:
    def _run_sharded(self, tmp_path):
        """Run two specs on each of two shards, each with its own ledger."""
        ledgers = {
            "shard-a": tmp_path / "shard-a.sqlite",
            "shard-b": tmp_path / "shard-b.sqlite",
        }
        cache = tmp_path / "cache"
        for shard, path in ledgers.items():
            seeds = (1, 2) if shard == "shard-a" else (3, 4)
            with RunLedger(path) as ledger:
                with Client(
                    cache_dir=cache, ledger=ledger, shard=shard
                ) as client:
                    client.map([small_spec(seed=s) for s in seeds])
        return ledgers

    def test_merge_conserves_counts_and_remaps_run_ids(self, tmp_path):
        ledgers = self._run_sharded(tmp_path)
        per_shard = {}
        for shard, path in ledgers.items():
            with RunLedger(path) as ledger:
                per_shard[shard] = ledger.counts()
                assert all(
                    row["shard"] == shard for row in ledger.runs()
                )
        merged_path = tmp_path / "merged.sqlite"
        with RunLedger(merged_path) as merged:
            for path in ledgers.values():
                merged.merge(path)
            counts = merged.counts()
            for key in ("runs", "slices", "events"):
                assert counts[key] == sum(c[key] for c in per_shard.values())
            run_ids = [row["run_id"] for row in merged.runs()]
            assert len(run_ids) == len(set(run_ids)), "run-id collision"
            table = {row["shard"]: row for row in merged.shard_table()}
            assert set(table) == set(ledgers)
            for shard, row in table.items():
                assert row["runs"] == per_shard[shard]["runs"]
                assert row["complete"] == per_shard[shard]["runs"]

    def test_shard_filter_matches_source_ledger(self, tmp_path):
        ledgers = self._run_sharded(tmp_path)
        merged_path = tmp_path / "merged.sqlite"
        with RunLedger(merged_path) as merged:
            for path in ledgers.values():
                merged.merge(path)
            only_a = merged.runs(shard="shard-a")
            assert len(only_a) == 2
            assert all(row["shard"] == "shard-a" for row in only_a)


# ---------------------------------------------------------------------------
# connect(): one client API, two transports
# ---------------------------------------------------------------------------

class TestConnect:
    def test_in_process_by_default(self, tmp_path):
        with connect(cache_dir=tmp_path) as client:
            assert isinstance(client, Client)
            result = client.run(small_spec())
        pos, _vel, _t = solo_state(small_spec())
        assert_bit_identical(pos, result.positions)

    def test_remote_parity_with_in_process(self, tmp_path):
        spec = small_spec(seed=5)
        with connect(None, cache_dir=tmp_path / "local") as client:
            local = client.run(spec)
        with Coordinator(cache_dir=tmp_path / "shared", ledger=False) as coord:
            with Worker(
                coord.addr, "shard-a",
                cache_dir=tmp_path / "shared", ledger=False,
            ):
                with connect(coord.addr) as client:
                    assert isinstance(client, Client)
                    handle = client.submit(spec)
                    assert isinstance(handle, RemoteHandle)
                    remote = handle.result(timeout=_WAIT)
        assert_bit_identical(local.positions, remote.positions)
        assert_bit_identical(local.velocities, remote.velocities)
        assert local.time == remote.time

    def test_service_kwargs_rejected_for_remote(self, tmp_path):
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            with pytest.raises(ServeError, match="max_concurrent_jobs"):
                connect(coord.addr, max_concurrent_jobs=4)

    def test_addr_resolves_through_configure_and_env(
        self, tmp_path, monkeypatch
    ):
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            monkeypatch.setenv(ENV_ADDR, coord.addr)
            try:
                with connect() as client:
                    assert isinstance(client.service, RemoteService)
                    assert client.service.addr == coord.addr
                # configure() beats the environment...
                set_overrides(addr=coord.addr)
                monkeypatch.setenv(ENV_ADDR, "203.0.113.1:1")
                with connect() as client:
                    assert client.service.addr == coord.addr
                # ...and an explicit None beats both (forces in-process).
                with connect(None, cache_dir=tmp_path) as client:
                    assert isinstance(client.service, JobService)
            finally:
                clear_overrides()

    def test_shutdown_rpc_stops_coordinator(self, tmp_path):
        coord = Coordinator(cache_dir=tmp_path, ledger=False).start()
        remote = RemoteService(coord.addr)
        try:
            remote.shutdown()
            assert coord.join(timeout=_WAIT)
            assert coord.describe()["closed"]
        finally:
            remote.close()
            coord.stop()


class TestTokenAuth:
    def test_token_mismatch_raises_clear_serve_error(self, tmp_path):
        with Coordinator(
            cache_dir=tmp_path, ledger=False, token="right"
        ) as coord:
            with connect(coord.addr, token="wrong") as client:
                with pytest.raises(ServeError, match="authentication failed"):
                    client.submit(small_spec(seed=60))

    def test_missing_token_rejected(self, tmp_path):
        with Coordinator(
            cache_dir=tmp_path, ledger=False, token="right"
        ) as coord:
            with connect(coord.addr) as client:
                with pytest.raises(ServeError, match="REPRO_SERVE_TOKEN"):
                    client.describe()

    def test_unauthenticated_shutdown_refused(self, tmp_path):
        with Coordinator(
            cache_dir=tmp_path, ledger=False, token="right"
        ) as coord:
            remote = RemoteService(coord.addr, token="wrong")
            try:
                with pytest.raises(ServeError, match="authentication failed"):
                    remote.shutdown()
            finally:
                remote.close()
            assert not coord.join(timeout=0.2)  # still running

    def test_matching_token_full_round_trip(self, tmp_path):
        spec = small_spec(seed=61)
        with Coordinator(
            cache_dir=tmp_path, ledger=False, token="s3cret"
        ) as coord:
            with Worker(
                coord.addr, "auth-shard", cache_dir=tmp_path, ledger=False,
                token="s3cret",
            ):
                with connect(coord.addr, token="s3cret") as client:
                    result = client.run(spec, timeout=120)
        pos, _vel, _time = solo_state(spec)
        assert_bit_identical(result.positions, pos)

    def test_token_resolves_through_settings_chain(self, tmp_path):
        from repro.serve.settings import clear_overrides, set_overrides

        set_overrides(token="from-config")
        try:
            with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
                assert coord.token == "from-config"
                # connect() with no explicit token picks it up too.
                with connect(coord.addr) as client:
                    client.describe()  # authenticates successfully
        finally:
            clear_overrides()

    def test_no_token_disables_auth(self, tmp_path):
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            with connect(coord.addr) as client:
                client.describe()


class TestRemoteCancel:
    def test_cancel_queued_job_over_the_wire(self, tmp_path):
        # No worker connected: everything stays queued and cancellable.
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            with connect(coord.addr) as client:
                handle = client.submit(small_spec(seed=62))
                assert client.cancel(handle.spec_hash) is True
                from repro.errors import JobCancelledError

                with pytest.raises(JobCancelledError):
                    handle.result(timeout=10)
                assert handle.status == "cancelled"
                assert client.describe()["cancelled"] == 1

    def test_cancel_done_job_reports_false(self, tmp_path):
        spec = small_spec(seed=63)
        with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
            with Worker(
                coord.addr, "cancel-shard", cache_dir=tmp_path, ledger=False
            ):
                with connect(coord.addr) as client:
                    handle = client.submit(spec)
                    handle.result(timeout=120)
                    assert client.cancel(handle.spec_hash) is False


class TestTenantOverWire:
    def test_tenant_reaches_worker_ledger(self, tmp_path):
        """The tenant label survives coordinator -> worker -> ledger."""
        spec = small_spec(seed=64)
        ledger_dir = tmp_path / "ledger"
        with Coordinator(
            cache_dir=tmp_path / "cache", ledger=False
        ) as coord:
            with Worker(
                coord.addr, "tenant-shard", cache_dir=tmp_path / "cache",
                ledger=RunLedger(ledger_dir),
            ) as worker:
                with connect(coord.addr) as client:
                    handle = client.submit(
                        spec, options=SubmitOptions(tenant="acme")
                    )
                    handle.result(timeout=120)
                worker.service.close(drain=True)
        with RunLedger(ledger_dir) as led:
            rows = led.runs(tenant="acme")
            assert len(rows) == 1
            assert rows[0]["tenant"] == "acme"
            table = led.tenant_table()
            assert [row["tenant"] for row in table] == ["acme"]

    def test_coordinator_quota_rejects_over_wire(self, tmp_path):
        from repro.errors import QuotaError

        with Coordinator(
            cache_dir=tmp_path, ledger=False,
            tenants={"capped": {"max_queued": 1}},
        ) as coord:
            with connect(coord.addr) as client:
                client.submit(
                    small_spec(seed=65), options=SubmitOptions(tenant="capped")
                )
                with pytest.raises(QuotaError, match="max_queued"):
                    client.submit(
                        small_spec(seed=66),
                        options=SubmitOptions(tenant="capped"),
                    )


class TestDeprecationShims:
    def test_direct_job_service_warns_exactly_once(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            svc = JobService(cache_dir=tmp_path)
            svc.close()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "connect()" in str(deprecations[0].message)

    def test_direct_client_warns_exactly_once(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with Client(cache_dir=tmp_path):
                pass
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        # Client builds its JobService internally — still one warning.
        assert len(deprecations) == 1
        assert "Client" in str(deprecations[0].message)

    def test_connect_and_worker_do_not_warn(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with connect(None, cache_dir=tmp_path):
                pass
            with Coordinator(cache_dir=tmp_path, ledger=False) as coord:
                Worker(
                    coord.addr, "quiet", cache_dir=tmp_path, ledger=False
                ).service.close()
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_deprecated_paths_still_functional(self, tmp_path):
        spec = small_spec(seed=6)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with Client(cache_dir=tmp_path) as client:
                via_client = client.run(spec)
        with connect(None, cache_dir=tmp_path / "fresh") as client:
            via_connect = client.run(spec)
        assert_bit_identical(via_client.positions, via_connect.positions)

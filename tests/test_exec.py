"""Tests for repro.exec: workspace pool, parallel engine, determinism.

Covers the three contracts the execution layer makes:

1. the workspace pool hands out reused storage and does not grow in
   steady state;
2. ``ExecutionEngine.map`` returns results in fixed index order on every
   backend, so parallel force passes are **bit-identical** to serial;
3. dispatches are observable (``exec.dispatch`` / ``exec.worker`` spans,
   ``tasks_total`` counter, ``workspace_bytes`` gauge).

Plus regression tests for the PR's bugfixes: step/force-pass accounting,
coincident-body detection in ``direct_forces``, and ``out=`` validation
in ``accelerations_from_sources``.
"""

import numpy as np
import pytest

from repro import obs
from repro.check import assert_bit_identical
from repro.core.plans import PlanConfig, plan_by_name
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.exec import (
    BACKENDS,
    ExecConfig,
    ExecutionEngine,
    Workspace,
    get_default_engine,
    local_workspace,
    set_default_engine,
    total_workspace_bytes,
    uncached,
)
from repro.nbody.forces import accelerations_from_sources, direct_forces
from repro.nbody.ic import plummer

PLANS = ["i", "j", "w", "jw"]
EPS = 1e-2


# ---------------------------------------------------------------------------
# Workspace
# ---------------------------------------------------------------------------

class TestWorkspace:
    def test_take_reuses_storage(self):
        ws = Workspace(register=False)
        a = ws.take("d", (4, 3))
        b = ws.take("d", (4, 3))
        assert a.base is b.base
        assert ws.requests == 2
        assert ws.allocations == 1

    def test_grow_only_capacity(self):
        ws = Workspace(register=False)
        ws.take("d", 100)
        ws.take("d", 50)  # smaller: no new allocation
        assert ws.allocations == 1
        ws.take("d", 200)  # larger: grows
        assert ws.allocations == 2
        ws.take("d", 100)  # fits in grown capacity
        assert ws.allocations == 2

    def test_dtype_keys_are_independent(self):
        ws = Workspace(register=False)
        a = ws.take("d", 8, np.float64)
        b = ws.take("d", 8, np.float32)
        a[...] = 1.0
        b[...] = 2.0
        assert np.all(a == 1.0)
        assert np.all(b == 2.0)
        assert ws.n_buffers == 2

    def test_shape_and_dtype_of_views(self):
        ws = Workspace(register=False)
        arr = ws.take("x", (3, 5, 2), np.float32)
        assert arr.shape == (3, 5, 2)
        assert arr.dtype == np.float32

    def test_zeros_zero_fills(self):
        ws = Workspace(register=False)
        ws.take("acc", 6)[...] = 7.0  # dirty the buffer
        assert np.all(ws.zeros("acc", 6) == 0.0)

    def test_cast_is_noop_on_matching_dtype(self):
        ws = Workspace(register=False)
        arr = np.ones(4, np.float32)
        assert ws.cast("c", arr, np.float32) is arr
        out = ws.cast("c", arr, np.float64)
        assert out is not arr
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, arr)

    def test_stats_and_clear(self):
        ws = Workspace(name="t", register=False)
        ws.take("d", 10, np.float64)
        s = ws.stats()
        assert s["name"] == "t"
        assert s["nbytes"] == 80
        assert s["n_buffers"] == 1
        ws.clear()
        assert ws.nbytes == 0
        assert ws.allocations == 1  # counters survive clear

    def test_local_workspace_is_per_thread_and_cached(self):
        import threading

        ws = local_workspace()
        assert local_workspace() is ws
        seen = []
        t = threading.Thread(target=lambda: seen.append(local_workspace()))
        t.start()
        t.join()
        assert seen[0] is not ws

    def test_uncached_returns_fresh_workspaces(self):
        with uncached():
            a = local_workspace()
            b = local_workspace()
        assert a is not b
        assert local_workspace() is local_workspace()

    def test_total_workspace_bytes_counts_registered(self):
        before = total_workspace_bytes()
        ws = Workspace(name="counted")
        ws.take("d", 1000, np.float64)
        assert total_workspace_bytes() >= before + 8000
        ws.clear()


# ---------------------------------------------------------------------------
# ExecutionEngine
# ---------------------------------------------------------------------------

def _square(x):
    return x * x


class TestEngine:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ExecConfig(backend="cuda")
        with pytest.raises(ConfigurationError):
            ExecConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ExecConfig(chunk_size=0)
        with pytest.raises(ConfigurationError):
            ExecutionEngine(ExecConfig(), workers=2)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_preserves_order(self, backend):
        with ExecutionEngine(backend=backend, workers=2) as eng:
            assert eng.map(_square, range(20)) == [i * i for i in range(20)]

    def test_serial_fallback_for_single_task(self):
        with ExecutionEngine(backend="thread", workers=2) as eng:
            assert eng.map(_square, [3]) == [9]

    def test_counters_accumulate(self):
        with ExecutionEngine() as eng:
            eng.map(_square, range(5))
            eng.map(_square, range(3))
            assert eng.tasks_total == 8
            assert eng.dispatches == 2
            d = eng.describe()
            assert d["backend"] == "serial"
            assert d["tasks_total"] == 8

    def test_default_engine_configure_roundtrip(self):
        import repro

        prior = get_default_engine()
        try:
            eng = repro.configure(workers=2, exec_backend="thread")
            assert get_default_engine() is eng
            assert eng.workers == 2
            assert eng.backend == "thread"
            serial = repro.configure(workers=1)
            assert serial.backend == "serial"
        finally:
            set_default_engine(prior)

    def test_map_emits_spans_and_metrics(self):
        obs.enable(reset=True)
        try:
            with ExecutionEngine(backend="thread", workers=2) as eng:
                eng.map(_square, range(4), label="unit")
            spans = {s.name for s in obs.tracer().spans}
            assert "exec.dispatch" in spans
            assert "exec.worker" in spans
            dispatch = next(s for s in obs.tracer().spans if s.name == "exec.dispatch")
            assert dispatch.attrs["tasks"] == 4
            assert dispatch.attrs["label"] == "unit"
            workers = [s for s in obs.tracer().spans if s.name == "exec.worker"]
            assert [s.attrs["task"] for s in workers] == [0, 1, 2, 3]
            snap = obs.metrics().snapshot()
            assert snap["tasks_total"]["value"] == 4
            assert "workspace_bytes" in snap
        finally:
            obs.disable()


# ---------------------------------------------------------------------------
# Serial vs parallel bit-equality on the real force paths
# ---------------------------------------------------------------------------

class TestBitEquality:
    @pytest.mark.parametrize("plan_name", PLANS)
    @pytest.mark.parametrize(
        "backend,workers",
        [
            ("thread", 2),
            ("thread", 3),
            pytest.param("process", 2, marks=pytest.mark.process_backend),
        ],
    )
    def test_parallel_matches_serial_bitwise(
        self, bodies, plan_name, backend, workers
    ):
        pos, mass = bodies
        cfg = PlanConfig(softening=EPS)
        ref = plan_by_name(plan_name, cfg).accelerations(pos, mass)
        with ExecutionEngine(backend=backend, workers=workers) as eng:
            acc = plan_by_name(plan_name, cfg, engine=eng).accelerations(pos, mass)
        assert acc.dtype == ref.dtype
        assert_bit_identical(
            ref, acc, context=f"plan {plan_name} on {backend}x{workers}"
        )

    @pytest.mark.parametrize("plan_name", PLANS)
    def test_workspace_does_not_grow_across_passes(self, bodies, plan_name):
        pos, mass = bodies
        plan = plan_by_name(plan_name, PlanConfig(softening=EPS))
        plan.accelerations(pos, mass)  # warm the pool
        ws = local_workspace()
        nbytes, allocs = ws.nbytes, ws.allocations
        for _ in range(3):
            plan.accelerations(pos, mass)
        assert ws.nbytes == nbytes
        assert ws.allocations == allocs


# ---------------------------------------------------------------------------
# Bugfix regressions
# ---------------------------------------------------------------------------

class TestStepAccounting:
    """Regression: the record conflated force passes with steps."""

    def _sim(self, n_bodies=64, seed=3):
        return Simulation(
            plummer(n_bodies, seed=seed),
            plan_by_name("i", PlanConfig(softening=EPS)),
            dt=1e-3,
        )

    def test_steps_and_force_passes_diverge_by_one(self):
        sim = self._sim()
        sim.run(5)
        assert sim.record.steps == 5
        assert sim.record.force_passes == 6

    def test_step_span_index_counts_steps(self):
        obs.enable(reset=True)
        try:
            sim = self._sim()
            sim.run(3)
            indices = [
                s.attrs["index"] for s in obs.tracer().spans if s.name == "step"
            ]
            assert indices == [0, 1, 2]
        finally:
            obs.disable()

    def test_invalidate_forces_triggers_rebootstrap(self):
        sim = self._sim()
        sim.run(2)
        assert sim.record.force_passes == 3
        sim.invalidate_forces()
        sim.step()
        # fresh bootstrap: two new passes instead of one
        assert sim.record.force_passes == 5
        assert sim.record.steps == 3


class TestCoincidentBodies:
    """Regression: coincident distinct bodies silently produced inf/nan."""

    def test_raises_with_zero_softening(self):
        pos = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        mass = np.ones(3)
        with pytest.raises(ValueError, match="coincident"):
            direct_forces(pos, mass, softening=0.0, include_self=False)

    def test_softening_legalises_coincidence(self):
        pos = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        mass = np.ones(3)
        acc = direct_forces(pos, mass, softening=1e-2, include_self=False)
        assert np.all(np.isfinite(acc))

    def test_distinct_bodies_unaffected(self):
        p = plummer(32, seed=11)
        acc = direct_forces(p.positions, p.masses, softening=0.0, include_self=False)
        assert np.all(np.isfinite(acc))


class TestOutValidation:
    """Regression: wrong-shape/dtype ``out`` was silently accepted."""

    def _args(self, nt=8, ns=16):
        rng = np.random.default_rng(0)
        return (
            rng.standard_normal((nt, 3)),
            rng.standard_normal((ns, 3)),
            rng.random(ns),
        )

    def test_wrong_shape_raises(self):
        t, s, m = self._args()
        with pytest.raises(ValueError, match="out"):
            accelerations_from_sources(t, s, m, out=np.zeros((4, 3)))

    def test_wrong_dtype_raises(self):
        t, s, m = self._args()
        with pytest.raises(ValueError, match="out"):
            accelerations_from_sources(
                t, s, m, out=np.zeros((8, 3), np.float32)
            )

    def test_non_array_raises(self):
        t, s, m = self._args()
        with pytest.raises(ValueError, match="out"):
            accelerations_from_sources(t, s, m, out=[[0.0] * 3] * 8)

    def test_valid_out_accepted(self):
        t, s, m = self._args()
        out = np.zeros((8, 3))
        res = accelerations_from_sources(t, s, m, out=out)
        assert res is out
        assert np.any(out != 0.0)


# ---------------------------------------------------------------------------
# force_pass_bench smoke (tiny N)
# ---------------------------------------------------------------------------

def test_force_pass_bench_smoke():
    from repro.bench.runner import force_pass_bench

    rec = force_pass_bench("jw", 256, workers=2, backend="thread", repeats=1)
    assert rec["bit_identical"] is True
    assert rec["uncached_seconds"] > 0
    assert rec["serial_seconds"] > 0
    assert rec["parallel_seconds"] > 0
    assert rec["steady_state_allocations"] == 0

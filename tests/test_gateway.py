"""HTTP gateway: endpoints, auth, shedding, SSE, and bit-identity.

One gateway per test class (module-scoped fixtures keep the suite fast)
talking real HTTP over a loopback socket — no mocked transports. The
determinism gate is the load-bearing test: a job submitted through the
full HTTP path must be bit-identical to the same spec stepped solo.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from tests.conftest import small_spec, solo_state

from repro.check.golden import state_digest
from repro.nbody.particles import ParticleSet
from repro.serve import Gateway, validate_describe
from repro.serve.cache import load_result


def http(base, method, path, body=None, headers=None, timeout=60):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def spec_body(spec, **options):
    return {"spec": spec.to_dict(), "options": options or {}}


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    gw = Gateway(
        backend=None,
        cache_dir=tmp_path_factory.mktemp("gwcache"),
        ledger=False,
        max_concurrent_jobs=2,
        tenants={
            "interactive": {"weight": 4.0},
            "bulk": {"weight": 1.0, "max_queued": 3},
        },
    ).start()
    yield gw
    gw.stop()


@pytest.fixture(scope="module")
def base(gateway):
    return f"http://{gateway.addr}"


class TestEndpoints:
    def test_healthz(self, base):
        status, body, _ = http(base, "GET", "/healthz")
        assert (status, body) == (200, {"ok": True})

    def test_submit_status_result_round_trip(self, base):
        spec = small_spec(seed=101)
        status, body, _ = http(
            base, "POST", "/v1/jobs", spec_body(spec, tenant="interactive")
        )
        assert status == 200
        job = body["job"]
        assert job["spec_hash"] == spec.spec_hash()
        assert job["tenant"] == "interactive"

        status, body, _ = http(
            base, "GET", f"/v1/jobs/{spec.spec_hash()}/result?timeout=60"
        )
        assert status == 200
        assert body["job"]["status"] == "complete"
        assert body["result"]["steps"] == spec.steps
        assert len(body["result"]["state_sha256"]) == 64

        status, body, _ = http(base, "GET", f"/v1/jobs/{spec.spec_hash()}")
        assert status == 200 and body["job"]["status"] == "complete"

    def test_tenant_header_fallback(self, base):
        spec = small_spec(seed=102)
        status, body, _ = http(
            base, "POST", "/v1/jobs", spec_body(spec),
            headers={"X-Repro-Tenant": "interactive"},
        )
        assert status == 200
        assert body["job"]["tenant"] == "interactive"

    def test_gateway_result_bit_identical_to_solo(self, base, gateway):
        """The determinism gate, through the full HTTP path."""
        spec = small_spec(seed=103, steps=6)
        http(base, "POST", "/v1/jobs", spec_body(spec))
        status, body, _ = http(
            base, "GET", f"/v1/jobs/{spec.spec_hash()}/result?timeout=120"
        )
        assert status == 200
        pos, vel, time = solo_state(spec)
        solo = state_digest(
            ParticleSet(
                positions=pos, velocities=vel,
                masses=spec.build_simulation().particles.masses,
            ),
            time,
        )
        assert body["result"]["state_sha256"] == solo
        # And the digest matches the actual stored state, loaded back.
        result = load_result(spec, body["result"]["run_dir"], from_cache=True)
        np.testing.assert_array_equal(result.positions, pos)
        np.testing.assert_array_equal(result.velocities, vel)

    def test_unknown_job_404(self, base):
        status, body, _ = http(base, "GET", "/v1/jobs/feedfacedead")
        assert status == 404
        assert "unknown job" in body["error"]

    def test_unknown_route_404(self, base):
        status, _, _ = http(base, "GET", "/v1/nope")
        assert status == 404

    def test_malformed_body_400(self, base):
        request = urllib.request.Request(
            base + "/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 400

    def test_missing_spec_400(self, base):
        status, body, _ = http(base, "POST", "/v1/jobs", {"options": {}})
        assert status == 400 and "spec" in body["error"]

    def test_status_document_validates(self, base):
        status, body, _ = http(base, "GET", "/v1/status")
        assert status == 200
        doc = validate_describe(body["status"])
        assert doc["kind"] == "gateway"
        assert doc["backend"] == "in-process"
        assert doc["requests_total"] > 0
        # The backend's own (versioned) describe rides along.
        nested = validate_describe(doc["backend_describe"])
        assert nested["kind"] == "service"

    def test_cancel_endpoint(self, base):
        # Saturate the 2 scheduler slots, then cancel a queued job.
        blockers = [small_spec(seed=110 + i, steps=60) for i in range(2)]
        for spec in blockers:
            http(base, "POST", "/v1/jobs", spec_body(spec))
        victim = small_spec(seed=115, steps=60)
        http(base, "POST", "/v1/jobs", spec_body(victim))
        status, body, _ = http(
            base, "POST", f"/v1/jobs/{victim.spec_hash()}/cancel"
        )
        assert status == 200 and body["cancelled"] is True
        status, body, _ = http(
            base, "GET", f"/v1/jobs/{victim.spec_hash()}/result?timeout=30"
        )
        assert status == 200
        assert body["result"] is None
        assert body["job"]["error_type"] == "JobCancelledError"
        for spec in blockers:  # drain so the module fixture closes fast
            http(base, "GET", f"/v1/jobs/{spec.spec_hash()}/result?timeout=120")


class TestLoadShedding:
    def test_429_with_retry_after_on_quota(self, base):
        """bulk's max_queued=3 sheds the overflow with a backoff hint."""
        specs = [small_spec(seed=130 + i, steps=40) for i in range(10)]
        codes, retry_after = [], None
        for spec in specs:
            status, body, headers = http(
                base, "POST", "/v1/jobs", spec_body(spec, tenant="bulk")
            )
            codes.append(status)
            if status == 429:
                retry_after = headers.get("Retry-After")
                assert body["error_type"] in ("QuotaError", "AdmissionError")
        assert 429 in codes
        assert retry_after is not None and int(retry_after) >= 1
        for spec, code in zip(specs, codes):  # drain accepted jobs
            if code == 200:
                http(base, "GET", f"/v1/jobs/{spec.spec_hash()}/result?timeout=120")

    def test_shed_total_counted(self, base, gateway):
        assert gateway.shed_total > 0
        status, body, _ = http(base, "GET", "/v1/status")
        assert body["status"]["shed_total"] == gateway.shed_total


class TestEvents:
    def test_sse_streams_slices_then_finished(self, base):
        spec = small_spec(seed=140, steps=24)
        http(base, "POST", "/v1/jobs", spec_body(spec))
        events = []
        with urllib.request.urlopen(
            base + f"/v1/jobs/{spec.spec_hash()}/events", timeout=120
        ) as response:
            raw = response.read().decode()
        for block in raw.strip().split("\n\n"):
            fields = dict(
                line.split(": ", 1) for line in block.splitlines() if ": " in line
            )
            events.append((fields["event"], json.loads(fields["data"])))
        kinds = [kind for kind, _ in events]
        assert kinds[-1] == "finished"
        slices = [data for kind, data in events if kind == "slice"]
        if slices:  # raced-to-done jobs legitimately emit only `finished`
            assert all(s["spec_hash"] == spec.spec_hash() for s in slices)
            assert all("steps" in s and "tenant" in s for s in slices)

    def test_sse_on_finished_job_closes_immediately(self, base):
        spec = small_spec(seed=141)
        http(base, "POST", "/v1/jobs", spec_body(spec))
        http(base, "GET", f"/v1/jobs/{spec.spec_hash()}/result?timeout=60")
        with urllib.request.urlopen(
            base + f"/v1/jobs/{spec.spec_hash()}/events", timeout=30
        ) as response:
            raw = response.read().decode()
        assert "event: finished" in raw


class TestAuth:
    @pytest.fixture(scope="class")
    def auth_gateway(self, tmp_path_factory):
        gw = Gateway(
            backend=None,
            token="open-sesame",
            cache_dir=tmp_path_factory.mktemp("authcache"),
            ledger=False,
        ).start()
        yield gw
        gw.stop()

    @pytest.fixture(scope="class")
    def auth_base(self, auth_gateway):
        return f"http://{auth_gateway.addr}"

    def test_healthz_needs_no_token(self, auth_base):
        status, _, _ = http(auth_base, "GET", "/healthz")
        assert status == 200

    def test_missing_token_401(self, auth_base):
        status, body, _ = http(auth_base, "GET", "/v1/status")
        assert status == 401
        assert "Bearer" in body["error"]

    def test_wrong_token_401(self, auth_base):
        status, _, _ = http(
            auth_base, "GET", "/v1/status",
            headers={"Authorization": "Bearer wrong"},
        )
        assert status == 401

    def test_right_token_succeeds(self, auth_base):
        status, body, _ = http(
            auth_base, "GET", "/v1/status",
            headers={"Authorization": "Bearer open-sesame"},
        )
        assert status == 200
        assert body["status"]["auth"] is True

    def test_auth_failures_counted(self, auth_gateway):
        assert auth_gateway.auth_failures >= 2


class TestRemoteBackend:
    def test_gateway_fronts_coordinator(self, tmp_path):
        """Full distributed path: HTTP -> gateway -> coordinator -> shard."""
        from repro.serve import Coordinator, Worker

        cache = tmp_path / "cache"
        with Coordinator(
            "127.0.0.1:0", cache_dir=cache, ledger=False, token="tok"
        ) as coord:
            with Worker(
                coord.addr, "shard-g", cache_dir=cache, ledger=False,
                token="tok",
            ) as _worker:
                gw = Gateway(backend=coord.addr, token="tok").start()
                try:
                    base = f"http://{gw.addr}"
                    auth = {"Authorization": "Bearer tok"}
                    spec = small_spec(seed=150, steps=4)
                    status, body, _ = http(
                        base, "POST", "/v1/jobs",
                        spec_body(spec, tenant="acme"), headers=auth,
                    )
                    assert status == 200
                    status, body, _ = http(
                        base, "GET",
                        f"/v1/jobs/{spec.spec_hash()}/result?timeout=120",
                        headers=auth,
                    )
                    assert status == 200
                    pos, vel, time = solo_state(spec)
                    expected = state_digest(
                        ParticleSet(
                            positions=pos, velocities=vel,
                            masses=spec.build_simulation().particles.masses,
                        ),
                        time,
                    )
                    assert body["result"]["state_sha256"] == expected
                    # Status nests the *coordinator's* describe document.
                    status, body, _ = http(
                        base, "GET", "/v1/status", headers=auth
                    )
                    nested = validate_describe(
                        body["status"]["backend_describe"]
                    )
                    assert nested["kind"] == "coordinator"
                    # Status polling alone must observe completion — the
                    # gateway has to refresh the remote handle, whose
                    # cached status only moves on an RPC.
                    import time as _time

                    polled = small_spec(seed=151, steps=4)
                    http(
                        base, "POST", "/v1/jobs",
                        spec_body(polled), headers=auth,
                    )
                    deadline = _time.monotonic() + 60
                    job = {}
                    while _time.monotonic() < deadline:
                        _, body, _ = http(
                            base, "GET",
                            f"/v1/jobs/{polled.spec_hash()}",
                            headers=auth,
                        )
                        job = body["job"]
                        if job["status"] in ("complete", "failed"):
                            break
                        _time.sleep(0.05)
                    assert job.get("status") == "complete"
                finally:
                    gw.stop()

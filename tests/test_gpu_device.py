"""Unit tests for the device specification."""

import dataclasses

import pytest

from repro.errors import DeviceError
from repro.gpu.device import RADEON_HD_5850, DeviceSpec, scaled_device


class TestHD5850Preset:
    def test_alu_count(self):
        # 18 CU x 16 stream cores x 5 VLIW = 1440 ALUs, the published spec
        assert RADEON_HD_5850.total_alus == 1440

    def test_peak_flops(self):
        # 1440 ALUs x 2 flops (MAD) x 725 MHz = 2.088 TFLOPS
        assert RADEON_HD_5850.peak_flops == pytest.approx(2.088e12)

    def test_sustained_rate_matches_paper(self):
        # ~15e9 interactions/s -> ~300 GFLOPS at 20 flops/interaction
        gflops = RADEON_HD_5850.sustained_interaction_rate * 20 / 1e9
        assert 280 <= gflops <= 320

    def test_wavefront_and_workgroup(self):
        assert RADEON_HD_5850.wavefront_size == 64
        assert RADEON_HD_5850.max_workgroup_size == 256

    def test_seconds_conversion(self):
        assert RADEON_HD_5850.seconds(725e6) == pytest.approx(1.0)

    def test_bandwidth_per_cu(self):
        d = RADEON_HD_5850
        assert d.global_bytes_per_cycle_per_cu == pytest.approx(
            d.global_bandwidth_bytes_s / (d.clock_hz * d.compute_units)
        )

    def test_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RADEON_HD_5850.compute_units = 99  # type: ignore[misc]


class TestValidation:
    def test_rejects_nonpositive_fields(self):
        with pytest.raises(DeviceError):
            dataclasses.replace(RADEON_HD_5850, compute_units=0)
        with pytest.raises(DeviceError):
            dataclasses.replace(RADEON_HD_5850, clock_hz=-1.0)
        with pytest.raises(DeviceError):
            dataclasses.replace(RADEON_HD_5850, interaction_cycles=0.0)

    def test_rejects_negative_overheads(self):
        with pytest.raises(DeviceError):
            dataclasses.replace(RADEON_HD_5850, kernel_launch_overhead_s=-1e-6)

    def test_wavefront_divisibility(self):
        with pytest.raises(DeviceError, match="wavefront"):
            dataclasses.replace(RADEON_HD_5850, stream_cores_per_cu=60)

    def test_workgroup_multiple_of_wavefront(self):
        with pytest.raises(DeviceError, match="multiple"):
            dataclasses.replace(RADEON_HD_5850, max_workgroup_size=200)

    def test_validate_workgroup(self):
        RADEON_HD_5850.validate_workgroup(256)
        with pytest.raises(DeviceError):
            RADEON_HD_5850.validate_workgroup(512)
        with pytest.raises(DeviceError):
            RADEON_HD_5850.validate_workgroup(0)


class TestScaledDevice:
    def test_scales_peak(self):
        d = scaled_device(RADEON_HD_5850, compute_units=36)
        assert d.peak_flops == pytest.approx(2 * RADEON_HD_5850.peak_flops)

    def test_name_annotated(self):
        d = scaled_device(RADEON_HD_5850, compute_units=9)
        assert "9CU" in d.name

    def test_explicit_name(self):
        d = scaled_device(RADEON_HD_5850, compute_units=9, name="half")
        assert d.name == "half"

    def test_rejects_zero(self):
        with pytest.raises(DeviceError):
            scaled_device(RADEON_HD_5850, compute_units=0)

"""Tests for the event-graph command-stream simulator."""

import numpy as np
import pytest

from repro.core.pipeline import overlapped_pipeline3, serial_pipeline
from repro.errors import ConfigurationError
from repro.gpu.events import Command, EventGraph


class TestBasics:
    def test_single_command(self):
        g = EventGraph()
        g.submit("gpu", 2.0, label="k")
        assert g.makespan() == 2.0

    def test_in_order_queue_serialises(self):
        g = EventGraph()
        g.submit("gpu", 1.0)
        g.submit("gpu", 2.0)
        recs = g.simulate()
        assert recs[1].start == 1.0
        assert g.makespan() == 3.0

    def test_different_resources_run_concurrently(self):
        g = EventGraph()
        g.submit("host", 5.0)
        g.submit("gpu", 3.0)
        assert g.makespan() == 5.0

    def test_dependency_delays_start(self):
        g = EventGraph()
        a = g.submit("host", 5.0)
        g.submit("gpu", 1.0, deps=(a,))
        assert g.makespan() == 6.0

    def test_multiple_dependencies(self):
        g = EventGraph()
        a = g.submit("host", 2.0)
        b = g.submit("dma", 4.0)
        g.submit("gpu", 1.0, deps=(a, b))
        assert g.makespan() == 5.0

    def test_forward_dependency_rejected(self):
        g = EventGraph()
        with pytest.raises(ConfigurationError, match="not yet submitted"):
            g.submit("gpu", 1.0, deps=(0,))

    def test_zero_duration_allowed(self):
        g = EventGraph()
        g.submit("gpu", 0.0)
        assert g.makespan() == 0.0

    def test_command_validation(self):
        with pytest.raises(ConfigurationError):
            Command("gpu", -1.0)
        with pytest.raises(ConfigurationError):
            Command("", 1.0)

    def test_resource_busy_accounting(self):
        g = EventGraph()
        g.submit("gpu", 1.0)
        g.submit("gpu", 2.0)
        g.submit("host", 4.0)
        busy = g.resource_busy()
        assert busy == {"gpu": 3.0, "host": 4.0}

    def test_empty_graph(self):
        assert EventGraph().makespan() == 0.0


class TestCanonicalSchedules:
    def test_pipelined_step_matches_pipeline3(self, rng):
        """The event graph reproduces the closed-form recurrence exactly."""
        for _ in range(5):
            k = int(rng.integers(1, 20))
            h = rng.uniform(0.1, 1.0, k).tolist()
            u = rng.uniform(0.01, 0.5, k).tolist()
            d = rng.uniform(0.1, 1.0, k).tolist()
            g = EventGraph.pipelined_step(h, u, d)
            expected = overlapped_pipeline3(h, u, d).total_seconds
            assert g.makespan() == pytest.approx(expected)

    def test_serial_step_matches_serial_pipeline(self):
        g = EventGraph.serial_step(2.0, 0.5, 3.0)
        expected = serial_pipeline(2.5, 3.0).total_seconds
        assert g.makespan() == pytest.approx(expected)

    def test_multi_device_fanout_beats_single(self, rng):
        k = 16
        h = rng.uniform(0.01, 0.02, k).tolist()  # fast host: devices bound
        u = rng.uniform(0.01, 0.02, k).tolist()
        d = rng.uniform(0.5, 1.0, k).tolist()
        one = EventGraph.pipelined_step(h, u, d, n_devices=1).makespan()
        four = EventGraph.pipelined_step(h, u, d, n_devices=4).makespan()
        assert four < one / 2

    def test_multi_device_host_bound_does_not_scale(self, rng):
        k = 16
        h = rng.uniform(0.5, 1.0, k).tolist()  # slow host: devices starve
        u = rng.uniform(0.01, 0.02, k).tolist()
        d = rng.uniform(0.01, 0.02, k).tolist()
        one = EventGraph.pipelined_step(h, u, d, n_devices=1).makespan()
        four = EventGraph.pipelined_step(h, u, d, n_devices=4).makespan()
        assert four > one * 0.95

    def test_pipelined_step_validation(self):
        with pytest.raises(ConfigurationError):
            EventGraph.pipelined_step([1.0], [1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            EventGraph.pipelined_step([1.0], [1.0], [1.0], n_devices=0)

"""Unit tests for launch records and functional tiled kernels."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu.counters import CostCounters
from repro.gpu.device import RADEON_HD_5850
from repro.gpu.kernel import (
    packed_tile_loop_work,
    reduction_work,
    tile_loop_forces,
    tile_loop_work,
)
from repro.gpu.launch import KernelLaunch, NDRange, WorkGroupWork
from repro.nbody.forces import accelerations_from_sources

DEV = RADEON_HD_5850
EPS = 1e-2


class TestNDRange:
    def test_workgroup_count(self):
        assert NDRange(1024, 256).n_workgroups == 4

    def test_rejects_misaligned(self):
        with pytest.raises(LaunchError):
            NDRange(1000, 256)

    def test_rejects_nonpositive(self):
        with pytest.raises(LaunchError):
            NDRange(0, 256)
        with pytest.raises(LaunchError):
            NDRange(256, 0)

    def test_validate_on_device(self):
        NDRange(512, 256).validate_on(DEV)
        with pytest.raises(Exception):
            NDRange(1024, 512).validate_on(DEV)


class TestWorkGroupWork:
    def test_padding_fraction(self):
        wg = WorkGroupWork("x", interactions=80, issued_interactions=100, active_threads=10)
        assert wg.padding_fraction == pytest.approx(0.2)

    def test_zero_issued_padding(self):
        wg = WorkGroupWork("x", interactions=0, issued_interactions=0, active_threads=1)
        assert wg.padding_fraction == 0.0

    def test_rejects_issued_below_useful(self):
        with pytest.raises(LaunchError):
            WorkGroupWork("x", interactions=10, issued_interactions=5, active_threads=1)

    def test_rejects_no_threads(self):
        with pytest.raises(LaunchError):
            WorkGroupWork("x", interactions=0, issued_interactions=0, active_threads=0)


class TestKernelLaunch:
    def _wg(self, n=100):
        return WorkGroupWork("wg", interactions=n, issued_interactions=n, active_threads=1)

    def test_totals(self):
        kl = KernelLaunch("k", 256, [self._wg(10), self._wg(20)])
        assert kl.total_interactions == 30
        assert kl.n_workgroups == 2

    def test_rejects_empty(self):
        with pytest.raises(LaunchError, match="no work-groups"):
            KernelLaunch("k", 256, [])

    def test_rejects_overfull_workgroup(self):
        wg = WorkGroupWork("wg", interactions=1, issued_interactions=1, active_threads=300)
        with pytest.raises(LaunchError, match="active"):
            KernelLaunch("k", 256, [wg])

    def test_validate_on_checks_lds(self):
        wg = WorkGroupWork(
            "wg", interactions=1, issued_interactions=1, active_threads=1,
            lds_bytes_peak=DEV.lds_bytes_per_cu + 1,
        )
        kl = KernelLaunch("k", 256, [wg])
        with pytest.raises(LaunchError, match="LDS"):
            kl.validate_on(DEV)


class TestTileLoopForces:
    def test_matches_reference(self, plummer_small, rng):
        pos, m = plummer_small.positions, plummer_small.masses
        targets = pos[:40]
        acc = tile_loop_forces(
            targets, pos, m, wg_size=64, softening=EPS, device=DEV,
        )
        ref = accelerations_from_sources(targets, pos, m, softening=EPS)
        err = np.linalg.norm(acc - ref, axis=1) / np.linalg.norm(ref, axis=1)
        assert err.max() < 1e-4  # float32 tiles vs float64

    def test_tile_size_does_not_change_result_much(self, plummer_small):
        pos, m = plummer_small.positions, plummer_small.masses
        a1 = tile_loop_forces(pos[:16], pos, m, wg_size=16, softening=EPS)
        a2 = tile_loop_forces(pos[:16], pos, m, wg_size=256, softening=EPS)
        np.testing.assert_allclose(a1, a2, rtol=1e-4, atol=1e-6)

    def test_counters(self, plummer_small):
        pos, m = plummer_small.positions, plummer_small.masses
        c = CostCounters()
        tile_loop_forces(pos[:32], pos[:100], m[:100], wg_size=64, softening=EPS, counters=c)
        assert c.interactions == 32 * 100
        assert c.barriers == 2 * 2  # ceil(100/64) = 2 tiles
        assert c.lds_bytes == 2 * 64 * 16
        assert c.global_bytes > 0

    def test_lds_capacity_enforced(self, plummer_small):
        import dataclasses

        tiny = dataclasses.replace(DEV, lds_bytes_per_cu=256)
        pos, m = plummer_small.positions, plummer_small.masses
        with pytest.raises(Exception, match="LDS"):
            tile_loop_forces(pos[:8], pos, m, wg_size=64, softening=EPS, device=tiny)

    def test_g_scaling(self, plummer_small):
        pos, m = plummer_small.positions, plummer_small.masses
        a1 = tile_loop_forces(pos[:8], pos, m, wg_size=64, softening=EPS)
        a2 = tile_loop_forces(pos[:8], pos, m, wg_size=64, softening=EPS, G=2.0)
        np.testing.assert_allclose(a2, 2.0 * a1, rtol=1e-5)

    def test_rejects_bad_wg_size(self, plummer_small):
        pos, m = plummer_small.positions, plummer_small.masses
        with pytest.raises(ValueError):
            tile_loop_forces(pos[:4], pos, m, wg_size=0, softening=EPS)


class TestWorkRecords:
    def test_tile_loop_work_counts(self):
        wg = tile_loop_work("x", active_threads=100, n_sources=1000, wg_size=256, wavefront_size=64)
        assert wg.interactions == 100 * 1000
        # 100 threads -> 2 wavefronts -> 128 issued lanes
        assert wg.issued_interactions == 128 * 1000
        assert wg.tiles == 4  # ceil(1000/256)
        assert wg.barriers == 8

    def test_tile_loop_full_group_no_padding(self):
        wg = tile_loop_work("x", active_threads=256, n_sources=512, wg_size=256, wavefront_size=64)
        assert wg.padding_fraction == 0.0

    def test_packed_work_fills_lanes(self):
        wg = packed_tile_loop_work("x", n_targets=50, n_sources=1000, wg_size=256, wavefront_size=64)
        # packed mapping: padding only from the final partial slot
        assert wg.padding_fraction < 0.01
        assert wg.interactions == 50 * 1000
        assert wg.reduction_ops > 0

    def test_packed_beats_thread_per_body_on_small_groups(self):
        small_w = tile_loop_work("w", active_threads=50, n_sources=1000, wg_size=256, wavefront_size=64)
        small_jw = packed_tile_loop_work("jw", n_targets=50, n_sources=1000, wg_size=256, wavefront_size=64)
        assert small_jw.issued_interactions < small_w.issued_interactions

    def test_reduction_work_is_memory_only(self):
        wg = reduction_work("r", n_outputs=256, n_partials_per_output=4, wg_size=256, wavefront_size=64)
        assert wg.interactions == 0
        assert wg.global_bytes == 256 * 5 * 16
        assert wg.reduction_ops == 1024

    def test_work_records_reject_bad_args(self):
        with pytest.raises(ValueError):
            tile_loop_work("x", active_threads=0, n_sources=1, wg_size=64, wavefront_size=64)
        with pytest.raises(ValueError):
            packed_tile_loop_work("x", n_targets=0, n_sources=1, wg_size=64, wavefront_size=64)
        with pytest.raises(ValueError):
            reduction_work("x", n_outputs=0, n_partials_per_output=1, wg_size=64, wavefront_size=64)

"""Unit tests for the memory model and occupancy calculator."""

import pytest

from repro.errors import DeviceError
from repro.gpu.device import RADEON_HD_5850
from repro.gpu.memory import (
    BYTES_PER_BODY,
    TransferLog,
    body_transfer_time,
    check_lds_fit,
    lds_tile_capacity,
    transfer_time,
)
from repro.gpu.occupancy import kernel_occupancy

DEV = RADEON_HD_5850


class TestTransfers:
    def test_zero_bytes_is_free(self):
        assert transfer_time(DEV, 0) == 0.0

    def test_latency_plus_bandwidth(self):
        t = transfer_time(DEV, 5_000_000)
        assert t == pytest.approx(DEV.pcie_latency_s + 5_000_000 / DEV.pcie_bandwidth_bytes_s)

    def test_body_transfer(self):
        assert body_transfer_time(DEV, 1000) == pytest.approx(
            transfer_time(DEV, 1000 * BYTES_PER_BODY)
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            transfer_time(DEV, -1)

    def test_transfer_log(self):
        log = TransferLog()
        log.host_to_device(1000)
        log.device_to_host(500)
        assert log.h2d_bytes == 1000
        assert log.d2h_bytes == 500
        assert log.n_transfers == 2
        expected = 2 * DEV.pcie_latency_s + 1500 / DEV.pcie_bandwidth_bytes_s
        assert log.total_time(DEV) == pytest.approx(expected)

    def test_transfer_log_rejects_negative(self):
        log = TransferLog()
        with pytest.raises(ValueError):
            log.host_to_device(-1)
        with pytest.raises(ValueError):
            log.device_to_host(-1)


class TestLds:
    def test_tile_capacity(self):
        assert lds_tile_capacity(DEV) == DEV.lds_bytes_per_cu // 16

    def test_capacity_rejects_bad_item(self):
        with pytest.raises(ValueError):
            lds_tile_capacity(DEV, 0)

    def test_check_fit(self):
        check_lds_fit(DEV, DEV.lds_bytes_per_cu)  # exactly fits
        with pytest.raises(DeviceError, match="LDS"):
            check_lds_fit(DEV, DEV.lds_bytes_per_cu + 1)


class TestOccupancy:
    def test_full_launch_fully_efficient(self):
        occ = kernel_occupancy(DEV, wg_size=256, n_workgroups=1000)
        assert occ.latency_efficiency == 1.0
        assert occ.cu_utilization == 1.0

    def test_small_launch_underutilises_cus(self):
        occ = kernel_occupancy(DEV, wg_size=256, n_workgroups=4)
        assert occ.cu_utilization == pytest.approx(4 / 18)

    def test_single_small_workgroup_lacks_latency_hiding(self):
        occ = kernel_occupancy(DEV, wg_size=64, n_workgroups=1)
        # one wavefront resident out of the ~7 needed
        assert occ.latency_efficiency == pytest.approx(1 / 7)

    def test_wavefronts_per_workgroup(self):
        occ = kernel_occupancy(DEV, wg_size=256, n_workgroups=100)
        assert occ.wavefronts_per_workgroup == 4

    def test_lds_limits_residency(self):
        # a work-group using the whole LDS can only have one resident copy
        occ = kernel_occupancy(
            DEV, wg_size=64, n_workgroups=1000,
            lds_bytes_per_wg=DEV.lds_bytes_per_cu,
        )
        assert occ.workgroups_per_cu_limit == 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(DeviceError):
            kernel_occupancy(DEV, wg_size=512, n_workgroups=1)
        with pytest.raises(DeviceError):
            kernel_occupancy(DEV, wg_size=64, n_workgroups=0)
        with pytest.raises(DeviceError):
            kernel_occupancy(DEV, wg_size=64, n_workgroups=1, lds_bytes_per_wg=-1)
        with pytest.raises(DeviceError):
            kernel_occupancy(
                DEV, wg_size=64, n_workgroups=1,
                lds_bytes_per_wg=DEV.lds_bytes_per_cu + 1,
            )

    def test_monotone_in_workgroups(self):
        effs = [
            kernel_occupancy(DEV, wg_size=64, n_workgroups=n).latency_efficiency
            for n in (1, 18, 72, 720)
        ]
        assert effs == sorted(effs)

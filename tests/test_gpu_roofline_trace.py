"""Tests for the roofline model and execution traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.device import RADEON_HD_5850
from repro.gpu.kernel import reduction_work, tile_loop_work
from repro.gpu.launch import KernelLaunch
from repro.gpu.roofline import ridge_intensity, roofline_point
from repro.gpu.trace import trace_costs, trace_launch
from repro.gpu.timing import time_kernel

DEV = RADEON_HD_5850


def _force_launch(n_wgs=32):
    wgs = [
        tile_loop_work(f"wg{i}", active_threads=256, n_sources=4096,
                       wg_size=256, wavefront_size=64)
        for i in range(n_wgs)
    ]
    return KernelLaunch("force", 256, wgs)


def _reduce_launch(n_wgs=32):
    wgs = [
        reduction_work(f"r{i}", n_outputs=256, n_partials_per_output=8,
                       wg_size=256, wavefront_size=64)
        for i in range(n_wgs)
    ]
    return KernelLaunch("reduce", 256, wgs)


class TestRoofline:
    def test_force_kernel_compute_bound(self):
        pt = roofline_point(DEV, _force_launch())
        assert pt.compute_bound
        assert pt.efficiency_ceiling == 1.0
        assert pt.arithmetic_intensity > ridge_intensity(DEV)

    def test_reduction_kernel_memory_bound(self):
        pt = roofline_point(DEV, _reduce_launch())
        assert not pt.compute_bound
        assert pt.efficiency_ceiling < 1.0
        # zero interactions -> zero intensity
        assert pt.arithmetic_intensity == 0.0

    def test_ridge_point_value(self):
        # sustained ~298 GFLOPS over 128 GB/s -> ~2.3 flops/byte
        r = ridge_intensity(DEV)
        assert 1.0 < r < 5.0

    def test_attainable_below_peak_for_low_intensity(self):
        pt = roofline_point(DEV, _reduce_launch())
        assert pt.attainable_flops_s < pt.peak_flops_s

    def test_zero_bytes_infinite_intensity(self):
        wg = tile_loop_work("x", active_threads=64, n_sources=0, wg_size=64,
                            wavefront_size=64)
        wg.global_bytes = 0
        pt = roofline_point(DEV, KernelLaunch("k", 64, [wg]))
        assert pt.arithmetic_intensity in (0.0, float("inf"))  # 0 flops / 0 bytes


class TestTraceCosts:
    def test_dynamic_intervals_tile_workers(self):
        tr = trace_costs(np.ones(8), 4, policy="dynamic")
        assert tr.makespan == pytest.approx(2.0)
        assert tr.utilization == pytest.approx(1.0)
        assert len(tr.intervals) == 8

    def test_static_imbalance_visible(self):
        costs = np.array([10.0, 1.0] * 8)  # heavy items all hit worker 0
        tr_static = trace_costs(costs, 2, policy="static")
        tr_dyn = trace_costs(costs, 2, policy="dynamic")
        assert tr_static.makespan > tr_dyn.makespan
        assert tr_static.utilization < tr_dyn.utilization

    def test_intervals_non_overlapping_per_worker(self):
        rngc = np.random.default_rng(3).uniform(0.5, 2.0, 50)
        tr = trace_costs(rngc, 7, policy="dynamic")
        for w in range(7):
            ivs = sorted(
                (iv for iv in tr.intervals if iv.worker == w), key=lambda x: x.start
            )
            for a, b in zip(ivs, ivs[1:]):
                assert b.start >= a.end - 1e-12

    def test_labels(self):
        tr = trace_costs(np.ones(2), 2, labels=["a", "b"])
        assert {iv.label for iv in tr.intervals} == {"a", "b"}

    def test_gantt_renders(self):
        tr = trace_costs(np.ones(6), 3)
        out = tr.gantt(width=40)
        assert "CU00" in out and "CU02" in out
        assert "utilization" in out

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            trace_costs(np.ones(2), 0)
        with pytest.raises(ConfigurationError):
            trace_costs(np.array([-1.0]), 2)
        with pytest.raises(ConfigurationError):
            trace_costs(np.ones(2), 2, labels=["only-one"])
        with pytest.raises(ConfigurationError):
            trace_costs(np.ones(2), 2, policy="psychic")
        with pytest.raises(ConfigurationError):
            trace_costs(np.ones(2), 2).gantt(width=5)


class TestTraceLaunch:
    def test_makespan_matches_timing_engine(self):
        launch = _force_launch(40)
        tr = trace_launch(DEV, launch)
        t = time_kernel(DEV, launch, include_launch_overhead=False)
        assert tr.makespan == pytest.approx(t.makespan_cycles, rel=1e-9)

    def test_static_schedule(self):
        launch = _force_launch(40)
        tr = trace_launch(DEV, launch, schedule="static")
        t = time_kernel(DEV, launch, schedule="static", include_launch_overhead=False)
        assert tr.makespan == pytest.approx(t.makespan_cycles, rel=1e-9)

    def test_workgroup_labels_preserved(self):
        tr = trace_launch(DEV, _force_launch(4))
        assert {iv.label for iv in tr.intervals} == {"wg0", "wg1", "wg2", "wg3"}

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ConfigurationError):
            trace_launch(DEV, _force_launch(2), schedule="psychic")

"""Unit tests for the timing engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.device import RADEON_HD_5850
from repro.gpu.kernel import tile_loop_work
from repro.gpu.launch import KernelLaunch, WorkGroupWork
from repro.gpu.timing import (
    greedy_schedule,
    round_robin_schedule,
    time_kernel,
    workgroup_cycles,
)

DEV = RADEON_HD_5850


def _launch(n_wgs, interactions_each=256 * 1024, wg_size=256):
    wgs = [
        tile_loop_work(
            f"wg{i}",
            active_threads=wg_size,
            n_sources=interactions_each // wg_size,
            wg_size=wg_size,
            wavefront_size=64,
        )
        for i in range(n_wgs)
    ]
    return KernelLaunch("k", wg_size, wgs)


class TestSchedulers:
    def test_greedy_balances(self):
        makespan, busy = greedy_schedule(np.ones(100), 10)
        assert makespan == pytest.approx(10.0)
        np.testing.assert_allclose(busy, 10.0)

    def test_greedy_handles_skew(self):
        costs = np.array([100.0] + [1.0] * 99)
        makespan, _ = greedy_schedule(costs, 10)
        assert makespan == pytest.approx(100.0)  # lower bound = largest item

    def test_round_robin_suffers_skew(self):
        # all heavy items land on the same worker under round-robin
        costs = np.array(([10.0] + [1.0] * 9) * 10)
        ms_rr, _ = round_robin_schedule(costs, 10)
        ms_gr, _ = greedy_schedule(costs, 10)
        assert ms_rr > ms_gr

    def test_greedy_beats_round_robin_on_skewed_work(self, rng):
        # not a universal guarantee (greedy FIFO can lose on adversarial
        # inputs), but on heavy-tailed walk-like work it should win
        costs = rng.pareto(1.5, 500) + 0.1
        ms_gr, _ = greedy_schedule(costs, 18)
        ms_rr, _ = round_robin_schedule(costs, 18)
        assert ms_gr <= ms_rr + 1e-12

    def test_makespan_lower_bounds(self, rng):
        costs = rng.uniform(0.5, 2.0, 64)
        ms, busy = greedy_schedule(costs, 18)
        assert ms >= costs.sum() / 18 - 1e-12
        assert ms >= costs.max() - 1e-12
        assert busy.sum() == pytest.approx(costs.sum())

    def test_empty_costs(self):
        ms, busy = greedy_schedule(np.array([]), 4)
        assert ms == 0.0
        np.testing.assert_array_equal(busy, 0.0)

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            greedy_schedule(np.ones(3), 0)
        with pytest.raises(ConfigurationError):
            round_robin_schedule(np.ones(3), 0)


class TestWorkgroupCycles:
    def test_compute_bound_workgroup(self):
        wg = tile_loop_work("x", active_threads=256, n_sources=4096, wg_size=256, wavefront_size=64)
        cycles = workgroup_cycles(DEV, wg, 1.0)
        compute = wg.issued_interactions / DEV.interactions_per_cycle_per_cu
        assert cycles >= compute  # plus barriers and dispatch

    def test_latency_efficiency_scales_compute(self):
        wg = tile_loop_work("x", active_threads=256, n_sources=4096, wg_size=256, wavefront_size=64)
        fast = workgroup_cycles(DEV, wg, 1.0)
        slow = workgroup_cycles(DEV, wg, 0.5)
        assert slow > fast

    def test_memory_bound_workgroup(self):
        wg = WorkGroupWork(
            "mem", interactions=0, issued_interactions=0, active_threads=256,
            global_bytes=10**6,
        )
        cycles = workgroup_cycles(DEV, wg, 1.0)
        assert cycles >= 10**6 / DEV.global_bytes_per_cycle_per_cu

    def test_rejects_bad_efficiency(self):
        wg = WorkGroupWork("x", interactions=0, issued_interactions=0, active_threads=1)
        with pytest.raises(ConfigurationError):
            workgroup_cycles(DEV, wg, 0.0)
        with pytest.raises(ConfigurationError):
            workgroup_cycles(DEV, wg, 1.5)


class TestTimeKernel:
    def test_seconds_positive_and_reasonable(self):
        t = time_kernel(DEV, _launch(64))
        assert t.seconds > 0
        # 64 WGs x 256k interactions at ~15e9/s -> ~1.1 ms
        assert 0.5e-3 < t.seconds < 5e-3

    def test_launch_overhead_included_once(self):
        with_oh = time_kernel(DEV, _launch(4))
        without = time_kernel(DEV, _launch(4), include_launch_overhead=False)
        assert with_oh.seconds - without.seconds == pytest.approx(
            DEV.kernel_launch_overhead_s
        )

    def test_more_workgroups_better_throughput(self):
        """Small launches waste CUs: GFLOPS should rise toward saturation."""
        def gflops(n_wgs):
            t = time_kernel(DEV, _launch(n_wgs))
            return 20 * t.total_interactions / t.seconds / 1e9

        g4, g18, g180 = gflops(4), gflops(18), gflops(180)
        assert g4 < g18 < g180

    def test_saturated_launch_near_sustained_rate(self):
        t = time_kernel(DEV, _launch(1800), include_launch_overhead=False)
        rate = t.total_issued_interactions / t.seconds
        assert rate == pytest.approx(DEV.sustained_interaction_rate, rel=0.1)

    def test_static_schedule_slower_on_skew(self):
        wgs = []
        for i in range(90):
            n_src = 4096 if i % 18 == 0 else 256
            wgs.append(
                tile_loop_work(f"wg{i}", active_threads=256, n_sources=n_src,
                               wg_size=256, wavefront_size=64)
            )
        kl = KernelLaunch("k", 256, wgs)
        t_hw = time_kernel(DEV, kl, schedule="hardware")
        t_st = time_kernel(DEV, kl, schedule="static")
        assert t_st.seconds >= t_hw.seconds

    def test_busy_fraction_bounded(self):
        t = time_kernel(DEV, _launch(100))
        assert 0.0 < t.cu_busy_fraction <= 1.0

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ConfigurationError):
            time_kernel(DEV, _launch(2), schedule="magic")

"""Unit tests for wavefront accounting and cost counters."""

import pytest

from repro.gpu.counters import CostCounters
from repro.gpu.wavefront import active_wavefronts, divergent_cycles, lane_utilization


class TestActiveWavefronts:
    @pytest.mark.parametrize(
        "items,expected", [(0, 0), (1, 1), (64, 1), (65, 2), (256, 4), (257, 5)]
    )
    def test_counts(self, items, expected):
        assert active_wavefronts(items, 64) == expected

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            active_wavefronts(-1, 64)
        with pytest.raises(ValueError):
            active_wavefronts(1, 0)


class TestLaneUtilization:
    def test_full_wavefront(self):
        assert lane_utilization(64, 64) == 1.0

    def test_half_wavefront(self):
        assert lane_utilization(32, 64) == 0.5

    def test_partial_second_wavefront(self):
        assert lane_utilization(96, 64) == pytest.approx(0.75)

    def test_zero_items(self):
        assert lane_utilization(0, 64) == 0.0


class TestDivergentCycles:
    def test_uniform_work(self):
        # 64 lanes, 10 units each, 2 cycles/unit -> one wavefront of max 10
        assert divergent_cycles([10] * 64, 64, 2.0) == 20.0

    def test_max_dominates(self):
        work = [1] * 63 + [100]
        assert divergent_cycles(work, 64, 1.0) == 100.0

    def test_multiple_wavefronts(self):
        work = [10] * 64 + [20] * 64
        assert divergent_cycles(work, 64, 1.0) == 30.0

    def test_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            divergent_cycles([1], 64, 0.0)


class TestCostCounters:
    def test_defaults_zero(self):
        c = CostCounters()
        assert c.interactions == 0
        assert c.flops() == 0.0

    def test_add_accumulates(self):
        a = CostCounters(interactions=10, global_bytes=100, barriers=2)
        b = CostCounters(interactions=5, lds_bytes=50, reductions=1)
        out = a.add(b)
        assert out is a
        assert a.interactions == 15
        assert a.global_bytes == 100
        assert a.lds_bytes == 50
        assert a.barriers == 2
        assert a.reductions == 1

    def test_copy_is_independent(self):
        a = CostCounters(interactions=3)
        b = a.copy()
        b.interactions += 1
        assert a.interactions == 3

    def test_flops_conventions(self):
        c = CostCounters(interactions=10)
        assert c.flops() == 200.0
        assert c.flops(38) == 380.0

"""Integration tests: full stacks working together end-to-end.

These cross module boundaries on purpose: workload generator -> tree ->
walks -> simulated device -> integrator -> diagnostics, and the PTPM
model's qualitative predictions against the measured simulator behaviour.
"""

import numpy as np
import pytest

from repro.core.plans import (
    IParallelPlan,
    JParallelPlan,
    JwParallelPlan,
    PlanConfig,
    WParallelPlan,
)
from repro.core.ptpm import describe
from repro.core.simulation import Simulation
from repro.nbody.energy import EnergyTracker, angular_momentum, momentum, total_energy
from repro.nbody.forces import direct_forces
from repro.nbody.ic import plummer, two_clusters
from repro.tree.bh_force import rms_relative_error

EPS = 1e-2


class TestFullSimulations:
    @pytest.mark.parametrize("plan_cls", [IParallelPlan, JwParallelPlan])
    def test_cluster_evolution_conserves_invariants(self, plan_cls):
        particles = plummer(512, seed=51)
        e0 = total_energy(particles, softening=EPS)
        p0 = momentum(particles)
        sim = Simulation(particles, plan_cls(PlanConfig(softening=EPS)), dt=1e-3)
        sim.run(30)
        e1 = total_energy(particles, softening=EPS)
        p1 = momentum(particles)
        assert abs(e1 - e0) / abs(e0) < 0.02
        # BH + float32 forces break exact momentum conservation mildly
        assert np.linalg.norm(p1 - p0) < 5e-3

    def test_two_cluster_merger_runs(self):
        particles = two_clusters(600, seed=52)
        l0 = angular_momentum(particles)
        sim = Simulation(particles, JwParallelPlan(PlanConfig(softening=EPS)), dt=2e-3)
        sim.run(20)
        l1 = angular_momentum(particles)
        np.testing.assert_allclose(l1, l0, atol=0.05 * np.linalg.norm(l0) + 1e-3)
        assert sim.record.simulated_seconds > 0

    def test_tracker_with_simulation(self):
        particles = plummer(256, seed=53)
        tracker = EnergyTracker(softening=EPS)
        sim = Simulation(particles, IParallelPlan(PlanConfig(softening=EPS)), dt=1e-3)
        tracker(0.0, particles)
        sim.run(10, callback=lambda s: tracker(s.time, s.particles))
        assert tracker.max_relative_drift() < 5e-3

    def test_plans_produce_same_trajectory_within_method_error(self):
        """Evolving with PP vs BH forces stays close over a short run."""
        pa = plummer(512, seed=54)
        pb = pa.copy()
        Simulation(pa, IParallelPlan(PlanConfig(softening=EPS)), dt=1e-3).run(10)
        Simulation(pb, JwParallelPlan(PlanConfig(softening=EPS)), dt=1e-3).run(10)
        drift = np.linalg.norm(pa.positions - pb.positions, axis=1)
        spread = np.linalg.norm(pa.positions, axis=1).mean()
        assert drift.max() / spread < 0.05


class TestPtpmPredictionsMatchMeasurement:
    """The PTPM descriptors' qualitative predictions, verified against the
    simulated device — the model must be falsifiable, and it is here."""

    @pytest.fixture(scope="class")
    def measurements(self):
        cfg = PlanConfig(softening=EPS)
        out = {}
        for n in (1024, 16384):
            p = plummer(n, seed=55)
            out[n] = {
                cls.name: cls(cfg).step_breakdown(p.positions, p.masses)
                for cls in (IParallelPlan, JParallelPlan, WParallelPlan, JwParallelPlan)
            }
        return out

    def test_occupancy_starvation_prediction(self, measurements):
        small = measurements[1024]
        large = measurements[16384]
        for name in ("i", "j", "w", "jw"):
            starved = describe(name).predicts_occupancy_starvation_at_small_n
            small_frac = small[name].kernel_gflops() / large[name].kernel_gflops()
            if starved:
                assert small_frac < 0.35, f"{name} should be starved at small N"
            else:
                assert small_frac > 0.2

    def test_lane_underutilization_prediction(self, measurements):
        for name in ("w", "jw"):
            util = measurements[16384][name].meta["lane_utilization"]
            if describe(name).predicts_lane_underutilization:
                assert util < 0.9
            else:
                assert util > 0.95

    def test_serial_host_prediction(self, measurements):
        for name in ("w", "jw"):
            b = measurements[16384][name]
            if describe(name).predicts_serial_host_bottleneck:
                assert not b.overlapped
            else:
                assert b.overlapped

    def test_reduction_prediction(self, measurements):
        bj = measurements[1024]["j"]
        assert describe("j").predicts_reduction_overhead
        assert len(bj.kernels) == 2  # force + reduce kernels


class TestDeviceScalingIntegration:
    def test_double_device_speeds_up_saturated_kernel(self):
        from repro.gpu.device import RADEON_HD_5850, scaled_device
        import dataclasses

        # N must be large enough that the doubled device is still saturated
        # (256 work-groups over 36 CUs keeps full residency)
        p = plummer(65536, seed=56)
        cfg1 = PlanConfig(softening=EPS)
        big = scaled_device(RADEON_HD_5850, compute_units=36)
        cfg2 = dataclasses.replace(cfg1, device=big)
        t1 = IParallelPlan(cfg1).step_breakdown(p.positions, p.masses).kernel_seconds
        t2 = IParallelPlan(cfg2).step_breakdown(p.positions, p.masses).kernel_seconds
        assert t1 / t2 == pytest.approx(2.0, rel=0.2)

    def test_functional_unaffected_by_device(self):
        from repro.gpu.device import RADEON_HD_5850, scaled_device
        import dataclasses

        p = plummer(256, seed=57)
        cfg1 = PlanConfig(softening=EPS)
        cfg2 = dataclasses.replace(cfg1, device=scaled_device(RADEON_HD_5850, compute_units=4))
        a1 = JwParallelPlan(cfg1).accelerations(p.positions, p.masses)
        a2 = JwParallelPlan(cfg2).accelerations(p.positions, p.masses)
        assert rms_relative_error(a2, a1) < 1e-6


class TestAccuracyIntegration:
    def test_all_plans_vs_direct_on_anisotropic_workload(self):
        from repro.nbody.ic import cold_disc

        p = cold_disc(512, seed=58)
        ref = direct_forces(p.positions, p.masses, softening=EPS, include_self=False)
        cfg = PlanConfig(softening=EPS)
        for cls, tol in [
            (IParallelPlan, 1e-4),
            (JParallelPlan, 1e-4),
            (WParallelPlan, 0.02),
            (JwParallelPlan, 0.02),
        ]:
            acc = cls(cfg).accelerations(p.positions, p.masses)
            assert rms_relative_error(acc, ref) < tol, cls.name

"""Tests for the force kernel-backend seam (:mod:`repro.nbody.kernels`).

Covers the registry/resolution contract, the bit-identity guarantee of
the numpy reference backend against the pre-seam blocked algorithm, the
compiled backends under the documented ``compiled-*`` oracle tolerances,
the eps2 square-then-cast policy, the coincident-pair error contract,
and the plan/config/CLI plumbing that selects a backend.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.check import (
    COMPILED_F32,
    COMPILED_F64,
    KERNEL_SHAPES,
    compiled_tolerance,
    kernel_matrix,
)
from repro.config import configure
from repro.core.plans import PlanConfig, plan_by_name
from repro.errors import ConfigurationError
from repro.exec.workspace import Workspace
from repro.gpu.kernel import tile_loop_forces
from repro.nbody.forces import (
    accelerations_from_sources,
    direct_forces,
    direct_forces_naive,
)
from repro.nbody.ic import plummer
from repro.nbody.kernels import (
    CoincidentPairError,
    KernelBackend,
    available_backends,
    compiled_backends,
    get_backend,
    known_backends,
    register_backend,
    resolve_backend,
)
from repro.nbody.kernels import settings as kernel_settings
from repro.runtime.checkpoint import plan_config_from_dict, plan_config_to_dict

EPS = 1e-2

_cext = get_backend("cext")
_numba = get_backend("numba")

needs_cext = pytest.mark.skipif(
    not _cext.available,
    reason=f"cext backend unavailable: {_cext.unavailable_reason}",
)
needs_numba = pytest.mark.skipif(
    not _numba.available,
    reason=f"numba backend unavailable: {_numba.unavailable_reason}",
)

#: Compiled backends that can actually run here (cext needs only a host
#: C compiler; numba rides along when the package is installed).
LIVE_COMPILED = [
    pytest.param("cext", marks=needs_cext),
    pytest.param("numba", marks=needs_numba),
]


@pytest.fixture(autouse=True)
def _clean_backend_selection(monkeypatch):
    """No test leaks a configure-level or env-level backend selection."""
    monkeypatch.delenv(kernel_settings.ENV_KERNEL_BACKEND, raising=False)
    kernel_settings.clear_overrides()
    yield
    kernel_settings.clear_overrides()


# ---------------------------------------------------------------------------
# Registry and resolution
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtins_registered(self):
        names = known_backends()
        for expected in ("numpy", "numba", "cext", "cupy", "jax"):
            assert expected in names

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert get_backend("numpy").kind == "reference"

    def test_compiled_backends_excludes_reference(self):
        assert "numpy" not in compiled_backends()
        for name in compiled_backends():
            assert get_backend(name).available

    def test_unknown_name_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("fortran77")

    def test_register_duplicate_rejected_unless_replace(self):
        numpy_backend = get_backend("numpy")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend(numpy_backend)
        # replace=True is the escape hatch (re-register the same instance).
        assert register_backend(numpy_backend, replace=True) is numpy_backend

    def test_describe_backends_shape(self):
        from repro.nbody.kernels import describe_backends

        rows = {d["name"]: d for d in describe_backends()}
        assert rows["numpy"]["kind"] == "reference"
        assert rows["numpy"]["available"] is True
        assert {"name", "kind", "available", "unavailable_reason"} <= set(
            rows["cext"]
        )


class _UnavailableStub(KernelBackend):
    kind = "compiled"

    def __init__(self, name):
        self.name = name

    @property
    def available(self):
        return False

    @property
    def unavailable_reason(self):
        return "test stub is never available"

    def sources(self, *a, **kw):  # pragma: no cover - never runs
        raise NotImplementedError

    def self_forces(self, *a, **kw):  # pragma: no cover - never runs
        raise NotImplementedError


class TestResolution:
    def test_default_is_numpy(self):
        assert kernel_settings.kernel_backend_name() == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(kernel_settings.ENV_KERNEL_BACKEND, "cext")
        assert kernel_settings.kernel_backend_name() == "cext"

    def test_configure_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernel_settings.ENV_KERNEL_BACKEND, "cext")
        configure(kernel_backend="numpy")
        assert kernel_settings.kernel_backend_name() == "numpy"

    def test_configure_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            configure(kernel_backend="not-a-backend")

    def test_explicit_instance_passes_through(self):
        backend = get_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_unavailable_falls_back_with_one_warning(self):
        stub = register_backend(_UnavailableStub("stub-warn-once"))
        try:
            with pytest.warns(RuntimeWarning, match="stub-warn-once"):
                assert resolve_backend("stub-warn-once").name == "numpy"
            # Second resolution stays silent (warn-once per backend name).
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_backend("stub-warn-once").name == "numpy"
        finally:
            from repro.nbody.kernels import _BACKENDS, _LOCK

            with _LOCK:
                _BACKENDS.pop(stub.name, None)

    def test_strict_raises_instead_of_falling_back(self):
        stub = register_backend(_UnavailableStub("stub-strict"))
        try:
            with pytest.raises(ConfigurationError, match="unavailable"):
                resolve_backend("stub-strict", strict=True)
        finally:
            from repro.nbody.kernels import _BACKENDS, _LOCK

            with _LOCK:
                _BACKENDS.pop(stub.name, None)


# ---------------------------------------------------------------------------
# numpy backend: bit-identity against the pre-seam algorithm
# ---------------------------------------------------------------------------

def _preseam_blocked_self(positions, masses, *, eps2, dtype, block):
    """Verbatim re-derivation of the pre-seam blocked self-interaction
    loop (same operation order), as an independent bit-identity oracle.
    """
    positions = np.asarray(positions, dtype=dtype)
    masses = np.asarray(masses, dtype=dtype)
    n = positions.shape[0]
    out = np.zeros((n, 3), dtype=dtype)
    for s0 in range(0, n, block):
        s1 = min(s0 + block, n)
        d = positions[s0:s1][np.newaxis, :, :] - positions[:, np.newaxis, :]
        r2 = np.einsum("ijk,ijk->ij", d, d)
        r2 += eps2
        rows = np.arange(s0, s1)
        r2[rows, rows - s0] = np.inf
        inv_r3 = np.power(r2, -1.5)
        inv_r3 *= masses[s0:s1][np.newaxis, :]
        out += np.einsum("ij,ijk->ik", inv_r3, d)
    return out


class TestNumpyBitIdentity:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("block", [7, 64, 2048])
    def test_direct_forces_matches_preseam_loop(self, plummer_small, dtype, block):
        pos, mass = plummer_small.positions, plummer_small.masses
        got = direct_forces(
            pos, mass, softening=EPS, include_self=False,
            dtype=dtype, block=block, backend="numpy",
        )
        expected = _preseam_blocked_self(
            pos, mass, eps2=EPS * EPS, dtype=dtype, block=block
        )
        assert got.dtype == np.dtype(dtype)
        assert np.array_equal(got, expected)

    def test_backend_none_defaults_to_numpy_bitwise(self, plummer_small):
        pos, mass = plummer_small.positions, plummer_small.masses
        default = direct_forces(pos, mass, softening=EPS)
        named = direct_forces(pos, mass, softening=EPS, backend="numpy")
        assert np.array_equal(default, named)

    def test_numpy_backend_wrapper_matches_raw_loops(self, plummer_small):
        """NumpyBackend.sources/self_forces agree bitwise with the entry
        points (the wrapper folds G into masses; G=1 here)."""
        pos = np.asarray(plummer_small.positions)
        mass = np.asarray(plummer_small.masses)
        backend = get_backend("numpy")
        out = np.zeros((pos.shape[0], 3))
        backend.self_forces(pos, mass, eps2=EPS * EPS, out=out)
        assert np.array_equal(
            out, direct_forces(pos, mass, softening=EPS, include_self=False)
        )


# ---------------------------------------------------------------------------
# eps2 policy: square in float64, cast to the arithmetic dtype once
# ---------------------------------------------------------------------------

class TestEps2Policy:
    def test_float32_uses_square_then_cast(self):
        # 0.1 is inexact in binary: squaring the rounded float32 softening
        # gives a different ulp than rounding the float64 square.  The
        # fixed paths must use the latter.
        softening = 0.1
        eps2_correct = np.float32(softening * softening)
        eps2_buggy = np.float32(softening) * np.float32(softening)
        assert eps2_correct != eps2_buggy  # the bug is observable at all

        # Separation well inside the softening length so eps2 dominates
        # r2 and its last ulp survives into the force.
        pos = np.array([[0.0, 0.0, 0.0], [0.01, 0.0, 0.0]], dtype=np.float32)
        mass = np.array([1.0, 1.0], dtype=np.float32)

        def two_body(eps2):
            # Kernel-identical arithmetic: r2 in f32, then r2**-1.5.
            d = np.float32(0.01)
            r2 = np.float32(d * d) + eps2
            return d * np.float32(np.power(r2, np.float32(-1.5)))

        got = accelerations_from_sources(
            pos[:1], pos[1:], mass[1:], softening=softening, dtype=np.float32
        )
        assert got[0, 0] == two_body(eps2_correct)
        assert got[0, 0] != two_body(eps2_buggy)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_tile_loop_uses_square_then_cast(self, dtype):
        softening = 0.1
        pos = np.array(
            [[0.0, 0.0, 0.0], [0.25, 0.0, 0.0], [0.0, 0.5, 0.0]], dtype=dtype
        )
        mass = np.ones(3, dtype=dtype)
        tiled = tile_loop_forces(
            pos, pos, mass, wg_size=2, softening=softening, dtype=dtype
        )
        blocked = direct_forces(pos, mass, softening=softening, dtype=dtype)
        # Same square-then-cast eps2 on both paths; float32 agreement
        # would be systematically off by the eps2 ulp otherwise.
        np.testing.assert_allclose(
            tiled, blocked, rtol=(1e-13 if dtype is np.float64 else 1e-5)
        )

    def test_float64_path_unchanged_by_policy(self, plummer_small):
        # For float64 targets square-then-cast is a no-op: softening**2
        # is already computed in float64.
        pos, mass = plummer_small.positions, plummer_small.masses
        got = direct_forces(pos, mass, softening=EPS, include_self=False)
        naive = direct_forces_naive(pos, mass, softening=EPS)
        np.testing.assert_allclose(got, naive, rtol=1e-12, atol=1e-14)


# ---------------------------------------------------------------------------
# Coincident-pair contract
# ---------------------------------------------------------------------------

class TestCoincidentPairs:
    def _coincident_set(self):
        # Bodies 3 and 4 coincide; with block=2 they land in the *last*
        # block, after earlier blocks have already been summed.
        pos = np.array(
            [
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.5, 0.5, 0.5],
                [0.5, 0.5, 0.5],
            ]
        )
        mass = np.ones(5)
        return pos, mass

    def test_error_names_the_pairs(self):
        pos, mass = self._coincident_set()
        with pytest.raises(ValueError, match="coincident") as exc_info:
            direct_forces(
                pos, mass, softening=0.0, include_self=False,
                backend="numpy",
            )
        err = exc_info.value
        assert isinstance(err, CoincidentPairError)
        assert set(err.pairs) == {(3, 4), (4, 3)}
        assert "(3, 4)" in str(err)

    def test_late_block_pairs_use_global_indices(self):
        # With block=2 the offending sources sit in the second block
        # ([2, 3]); the reported source index must be the *global* body
        # index 3, not the in-block offset 1, and the raise happens at
        # the first offending block (before block [4] is even formed).
        pos, mass = self._coincident_set()
        with pytest.raises(CoincidentPairError) as exc_info:
            direct_forces(
                pos, mass, softening=0.0, include_self=False, block=2,
                backend="numpy",
            )
        assert set(exc_info.value.pairs) == {(4, 3)}

    def test_validation_precedes_accumulation(self):
        # The bad pair sits in a late block; raising there (not after a
        # silent inf/nan propagates) is the contract.  Nothing about the
        # output should be observable, but at minimum no nan/inf warning
        # fires and the error is the coincidence error, not a numerics one.
        pos, mass = self._coincident_set()
        with np.errstate(all="raise"):
            with pytest.raises(CoincidentPairError):
                direct_forces(
                    pos, mass, softening=0.0, include_self=False, block=2
                )

    def test_nonzero_softening_is_fine(self):
        pos, mass = self._coincident_set()
        acc = direct_forces(pos, mass, softening=EPS, include_self=False)
        assert np.all(np.isfinite(acc))
        # Coincident bodies exert zero force on each other either way.
        d34 = acc[3] - acc[4]
        mutual = direct_forces(
            pos[[3, 4]], mass[[3, 4]], softening=EPS, include_self=False
        )
        assert np.array_equal(mutual, np.zeros((2, 3)))
        assert np.allclose(d34, 0.0)

    @pytest.mark.parametrize("name", LIVE_COMPILED)
    def test_compiled_backends_raise_same_pairs(self, name):
        pos, mass = self._coincident_set()
        with pytest.raises(ValueError, match="coincident") as exc_info:
            direct_forces(
                pos, mass, softening=0.0, include_self=False, backend=name
            )
        assert isinstance(exc_info.value, CoincidentPairError)
        assert set(exc_info.value.pairs) == {(3, 4), (4, 3)}


# ---------------------------------------------------------------------------
# Compiled backends vs the reference (the oracle matrix)
# ---------------------------------------------------------------------------

class TestCompiledBackends:
    @pytest.mark.parametrize("name", LIVE_COMPILED)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_sources_within_tolerance(self, plummer_small, name, dtype):
        pos = np.asarray(plummer_small.positions, dtype=dtype)
        mass = np.asarray(plummer_small.masses, dtype=dtype)
        got = accelerations_from_sources(
            pos, pos, mass, softening=EPS, dtype=dtype, backend=name
        )
        ref = accelerations_from_sources(
            pos, pos, mass, softening=EPS, dtype=dtype, backend="numpy"
        )
        tol = compiled_tolerance(dtype)
        np.testing.assert_allclose(
            got, ref, rtol=tol.max_rel, atol=tol.max_rel * np.abs(ref).max()
        )

    @pytest.mark.parametrize("name", LIVE_COMPILED)
    def test_kernel_matrix_all_green(self, plummer_small, name):
        comparisons = kernel_matrix(
            plummer_small.positions,
            plummer_small.masses,
            kernel_backends=[name],
            softening=EPS,
        )
        # backend x {direct, blocked, bh-leaf} x {f64, f32}
        assert len(comparisons) == len(KERNEL_SHAPES) * 2
        for c in comparisons:
            assert c.ok, f"{c.candidate}: {c.deviation}"
        labels = {c.candidate for c in comparisons}
        for shape in KERNEL_SHAPES:
            assert any(f"kernel:{shape}/{name}/" in lab for lab in labels)

    def test_kernel_matrix_rejects_unavailable_strictly(self):
        stub = register_backend(_UnavailableStub("stub-matrix"))
        try:
            with pytest.raises(ConfigurationError, match="unavailable"):
                kernel_matrix(
                    np.zeros((4, 3)), np.ones(4), kernel_backends=["stub-matrix"]
                )
        finally:
            from repro.nbody.kernels import _BACKENDS, _LOCK

            with _LOCK:
                _BACKENDS.pop(stub.name, None)

    @pytest.mark.parametrize("name", LIVE_COMPILED)
    def test_accumulate_and_G_semantics(self, name):
        rng = np.random.default_rng(3)
        pos = rng.standard_normal((32, 3))
        mass = rng.uniform(0.5, 1.5, 32)
        tgt = rng.standard_normal((16, 3))
        # Two accumulated passes with G != 1 must match the numpy path:
        # G scales the whole accumulator at the end of each call.
        out_c = np.zeros((16, 3))
        out_n = np.zeros((16, 3))
        for backend, out in ((name, out_c), ("numpy", out_n)):
            accelerations_from_sources(
                tgt, pos[:16], mass[:16], softening=EPS, G=2.0,
                out=out, accumulate=True, backend=backend,
            )
            accelerations_from_sources(
                tgt, pos[16:], mass[16:], softening=EPS, G=2.0,
                out=out, accumulate=True, backend=backend,
            )
        tol = compiled_tolerance(np.float64)
        np.testing.assert_allclose(out_c, out_n, rtol=1e-10,
                                   atol=tol.max_rel * np.abs(out_n).max())

    @pytest.mark.parametrize("name", LIVE_COMPILED)
    def test_noncontiguous_out_is_staged(self, name):
        rng = np.random.default_rng(4)
        pos = rng.standard_normal((24, 3))
        mass = np.ones(24)
        board = np.zeros((24, 6))
        view = board[:, ::2]  # non-contiguous (24, 3) view
        assert not view.flags.c_contiguous
        accelerations_from_sources(
            pos, pos, mass, softening=EPS, out=view, backend=name
        )
        dense = accelerations_from_sources(
            pos, pos, mass, softening=EPS, backend=name
        )
        assert np.array_equal(view, dense)

    @pytest.mark.parametrize("name", LIVE_COMPILED)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_tile_loop_compiled_matches_reference(self, name, dtype):
        from repro.gpu.counters import CostCounters

        p = plummer(96, seed=5)
        pos = np.asarray(p.positions, dtype=dtype)
        mass = np.asarray(p.masses, dtype=dtype)
        counters_c, counters_r = CostCounters(), CostCounters()
        compiled = tile_loop_forces(
            pos, pos, mass, wg_size=32, softening=EPS, dtype=dtype,
            counters=counters_c, backend=name,
        )
        ref = tile_loop_forces(
            pos, pos, mass, wg_size=32, softening=EPS, dtype=dtype,
            counters=counters_r, backend="numpy",
        )
        tol = compiled_tolerance(dtype)
        np.testing.assert_allclose(
            compiled, ref, rtol=tol.max_rel,
            atol=tol.max_rel * np.abs(ref).max(),
        )
        # Tile/traffic accounting is schedule-level, not backend-level.
        assert counters_c.interactions == counters_r.interactions
        assert counters_c.lds_bytes == counters_r.lds_bytes
        assert counters_c.barriers == counters_r.barriers


# ---------------------------------------------------------------------------
# Plan / config / checkpoint plumbing
# ---------------------------------------------------------------------------

class TestPlanPlumbing:
    def test_plan_config_validates_backend_name(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            PlanConfig(kernel_backend="who-knows")

    def test_plan_config_dict_roundtrip(self):
        config = PlanConfig(softening=EPS, kernel_backend="cext")
        data = plan_config_to_dict(config)
        assert data["kernel_backend"] == "cext"
        restored = plan_config_from_dict(data)
        assert restored.kernel_backend == "cext"

    def test_default_config_dict_has_no_backend_key(self):
        # Spec/manifest hashes of pre-seam configs must not change.
        data = plan_config_to_dict(PlanConfig(softening=EPS))
        assert "kernel_backend" not in data
        assert plan_config_from_dict(data).kernel_backend is None

    @pytest.mark.parametrize("name", LIVE_COMPILED)
    @pytest.mark.parametrize("plan_name", ["i", "j", "w", "jw"])
    def test_plans_run_on_compiled_backend(self, plummer_small, plan_name, name):
        pos, mass = plummer_small.positions, plummer_small.masses
        ref_plan = plan_by_name(plan_name, PlanConfig(softening=EPS, wg_size=64))
        cmp_plan = plan_by_name(
            plan_name,
            PlanConfig(softening=EPS, wg_size=64, kernel_backend=name),
        )
        ref = ref_plan.accelerations(pos, mass)
        got = cmp_plan.accelerations(pos, mass)
        # Device plans run float32 arithmetic, so the f32 compiled
        # tolerance is the relevant budget.
        tol = compiled_tolerance(np.float32)
        np.testing.assert_allclose(
            got, ref, rtol=tol.max_rel, atol=tol.max_rel * np.abs(ref).max()
        )

    def test_unavailable_plan_backend_degrades(self):
        stub = register_backend(_UnavailableStub("stub-plan"))
        try:
            plan = plan_by_name(
                "j", PlanConfig(softening=EPS, kernel_backend="stub-plan")
            )
            with pytest.warns(RuntimeWarning, match="stub-plan"):
                assert plan._kernel_backend() == "numpy"
        finally:
            from repro.nbody.kernels import _BACKENDS, _LOCK

            with _LOCK:
                _BACKENDS.pop(stub.name, None)


# ---------------------------------------------------------------------------
# Workspace interaction
# ---------------------------------------------------------------------------

class TestWorkspace:
    def test_explicit_workspace_reused(self, plummer_small):
        pos, mass = plummer_small.positions, plummer_small.masses
        ws = Workspace()
        a = direct_forces(pos, mass, softening=EPS, workspace=ws, block=64)
        buffers_after_first = ws.stats()["n_buffers"]
        b = direct_forces(pos, mass, softening=EPS, workspace=ws, block=64)
        assert ws.stats()["n_buffers"] == buffers_after_first
        assert np.array_equal(a, b)

"""Durable run ledger: schema gate, round-trip, merge, session/serve wiring.

The ledger is an *observer*: the tests here assert both that it records
what happened (statuses, queue wait, slice latency, cache/dedup/retry
accounting) and that turning it on changes nothing about the physics —
batched results stay bit-identical to solo runs.
"""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

import repro
from repro import obs
from repro.errors import LedgerError
from repro.obs.ledger import LEDGER_NAME, LEDGER_VERSION, RunLedger
from repro.obs.settings import clear_overrides, default_ledger, ledger_dir
from repro.runtime import RunSession
from repro.serve import JobService

from tests.conftest import Interrupt, interrupt_at, make_sim, small_spec, solo_state

# Direct JobService construction below is deliberate (ledger plumbing is
# service-level); the deprecation contract lives in tests/test_distrib.py.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(autouse=True)
def _clean_ledger_settings(monkeypatch):
    """Isolate every test from ambient ledger configuration."""
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    clear_overrides()
    yield
    clear_overrides()


# ---------------------------------------------------------------------------
# RunLedger basics
# ---------------------------------------------------------------------------

class TestRunLedgerBasics:
    def test_directory_and_file_paths(self, tmp_path):
        by_dir = RunLedger(tmp_path / "led")
        assert by_dir.path == tmp_path / "led" / LEDGER_NAME
        by_dir.close()
        by_file = RunLedger(tmp_path / "custom.sqlite")
        assert by_file.path == tmp_path / "custom.sqlite"
        by_file.close()

    def test_round_trip_write_reopen_query(self, tmp_path):
        led = RunLedger(tmp_path)
        run_id = led.record_submitted(
            spec_hash="a" * 64, source="serve", workload="plummer",
            n=128, seed=1, plan="jw", dt=1e-3, steps=40,
        )
        led.record_started(run_id, backend="thread", checkpoint_dir="d")
        led.record_slice(run_id, seq=1, steps=8, wall_s=0.5)
        led.record_slice(run_id, seq=2, steps=8, wall_s=1.5)
        led.record_event("checkpoint", "ckpt_00000008", run_id=run_id)
        led.record_finished(
            run_id, status="complete", wall_s=2.0, simulated_s=0.04,
            force_passes=41, retries=1, metrics={"k": 2},
        )
        led.close()

        led = RunLedger(tmp_path)  # reopen the same database
        assert led.user_version == LEDGER_VERSION
        assert len(led) == 1
        row = led.run(run_id)
        assert row["status"] == "complete"
        assert row["spec_hash"] == "a" * 64
        assert row["backend"] == "thread"
        assert row["retries"] == 1
        assert row["queue_wait_s"] >= 0.0
        assert '"k": 2' in row["metrics_json"]
        assert [s["steps"] for s in led.slices(run_id)] == [8, 8]
        assert [e["kind"] for e in led.events(run_id)] == ["checkpoint"]
        lat = led.slice_latency(run_id=run_id)
        assert lat["count"] == 2 and lat["p50"] == pytest.approx(1.0)
        (job,) = led.job_table()
        assert job["steps_done"] == 16 and job["slices"] == 2
        (plan_row,) = led.plan_table()
        assert plan_row["plan"] == "jw" and plan_row["complete"] == 1
        led.close()

    def test_filters(self, tmp_path):
        led = RunLedger(tmp_path)
        a = led.record_submitted(plan="i", spec_hash="aa")
        led.record_finished(a, status="failed", error="boom")
        led.record_submitted(plan="j", spec_hash="bb")
        assert [r["plan"] for r in led.runs(status="failed")] == ["i"]
        assert [r["plan"] for r in led.runs(spec_hash="bb")] == ["j"]
        assert [r["plan"] for r in led.runs(plan="j")] == ["j"]
        led.close()

    def test_unversioned_database_refused(self, tmp_path):
        db = tmp_path / "stray.sqlite"
        conn = sqlite3.connect(db)
        conn.execute("CREATE TABLE runs (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(LedgerError, match="unversioned"):
            RunLedger(db)

    def test_schema_version_drift_refused(self, tmp_path):
        led = RunLedger(tmp_path)
        led.close()
        conn = sqlite3.connect(tmp_path / LEDGER_NAME)
        conn.execute(f"PRAGMA user_version = {LEDGER_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(LedgerError, match="schema"):
            RunLedger(tmp_path)

    def test_unknown_columns_rejected(self, tmp_path):
        with RunLedger(tmp_path) as led:
            with pytest.raises(LedgerError, match="unknown run fields"):
                led.record_submitted(nonsense=1)
            run_id = led.record_submitted(plan="i")
            with pytest.raises(LedgerError, match="unknown run fields"):
                led.record_finished(run_id, status="complete", nonsense=1)
            with pytest.raises(LedgerError, match="status"):
                led.record_finished(run_id, status="exploded")

    def test_closed_ledger_raises(self, tmp_path):
        led = RunLedger(tmp_path)
        led.close()
        led.close()  # idempotent
        with pytest.raises(LedgerError, match="closed"):
            led.record_submitted(plan="i")

    def test_bump_dedup(self, tmp_path):
        with RunLedger(tmp_path) as led:
            run_id = led.record_submitted(plan="i")
            led.bump_dedup(run_id)
            led.bump_dedup(run_id)
            assert led.run(run_id)["dedup_count"] == 2


class TestMigrations:
    def _make_old(self, path, *, version):
        """An old-schema database: current schema minus later columns.

        v1 (PR-6 era) lacks ``shard`` and ``tenant``; v2 (PR-7 era)
        lacks only ``tenant``.
        """
        from repro.obs.ledger import _SCHEMA

        dropped = {"tenant"} if version >= 2 else {"shard", "tenant"}
        old_schema = "\n".join(
            line for line in _SCHEMA.splitlines()
            if line.strip().split(" ")[0] not in dropped
        )
        conn = sqlite3.connect(path)
        conn.executescript(old_schema)
        conn.execute(
            "INSERT INTO runs (spec_hash, source, plan, status) "
            "VALUES ('c0ffee', 'serve', 'jw', 'complete')"
        )
        conn.execute(f"PRAGMA user_version = {version}")
        conn.commit()
        conn.close()

    def _make_v1(self, path):
        self._make_old(path, version=1)

    def test_v1_database_migrates_in_place(self, tmp_path):
        db = tmp_path / "old.sqlite"
        self._make_v1(db)
        with RunLedger(db) as led:
            assert led.user_version == LEDGER_VERSION == 3
            (row,) = led.runs()
            assert row["shard"] is None  # pre-shard rows survive unlabeled
            assert row["plan"] == "jw"
            # The migrated database accepts shard-stamped rows.
            run_id = led.record_submitted(plan="i", shard="shard-a")
            assert led.run(run_id)["shard"] == "shard-a"
        # Reopening after migration is a no-op.
        with RunLedger(db) as led:
            assert led.user_version == LEDGER_VERSION

    def test_v1_shard_merges_into_v2_database(self, tmp_path):
        old = tmp_path / "old.sqlite"
        self._make_v1(old)
        with RunLedger(tmp_path / "merged.sqlite") as merged:
            merged.record_submitted(plan="j", shard="shard-b")
            assert merged.merge(old) == 1
            shards = {r["shard"] for r in merged.runs()}
            assert shards == {None, "shard-b"}

    def test_v2_database_migrates_to_v3(self, tmp_path):
        db = tmp_path / "v2.sqlite"
        self._make_old(db, version=2)
        with RunLedger(db) as led:
            assert led.user_version == LEDGER_VERSION == 3
            (row,) = led.runs()
            assert row["tenant"] is None  # pre-tenant rows survive unlabeled
            # The migrated database accepts tenant-stamped rows.
            run_id = led.record_submitted(plan="i", tenant="acme")
            assert led.run(run_id)["tenant"] == "acme"
        with RunLedger(db) as led:  # reopening is a no-op
            assert led.user_version == LEDGER_VERSION


class TestShardAccounting:
    def test_shard_filter_and_table(self, tmp_path):
        with RunLedger(tmp_path) as led:
            for shard, plan in (("a", "i"), ("a", "j"), ("b", "jw")):
                run_id = led.record_submitted(plan=plan, shard=shard, steps=4)
                led.record_finished(run_id, status="complete", wall_s=1.0)
            unlabeled = led.record_submitted(plan="w")
            led.record_finished(unlabeled, status="failed", error="boom")

            assert len(led.runs(shard="a")) == 2
            assert [r["plan"] for r in led.runs(shard="b")] == ["jw"]
            table = {row["shard"]: row for row in led.shard_table()}
            assert set(table) == {"a", "b", None}
            assert table["a"]["runs"] == 2 and table["a"]["complete"] == 2
            assert table["b"]["runs"] == 1
            assert table[None]["failed"] == 1

    def test_counts(self, tmp_path):
        with RunLedger(tmp_path) as led:
            run_id = led.record_submitted(plan="i")
            led.record_slice(run_id, seq=1, steps=4, wall_s=0.1)
            led.record_slice(run_id, seq=2, steps=4, wall_s=0.1)
            led.record_event("checkpoint", run_id=run_id)
            led.record_event("coord.submit", "deadbeef")
            assert led.counts() == {"runs": 1, "slices": 2, "events": 2}

    def test_serve_stamps_shard_on_rows(self, tmp_path):
        with RunLedger(tmp_path / "led") as ledger:
            with pytest.warns(DeprecationWarning):
                svc = JobService(
                    cache_dir=tmp_path / "cache", ledger=ledger,
                    shard="shard-x",
                )
            try:
                svc.run(small_spec())
            finally:
                svc.close()
            rows = ledger.runs()
            assert rows and all(r["shard"] == "shard-x" for r in rows)


class TestMerge:
    def test_merge_remaps_run_ids(self, tmp_path):
        a = RunLedger(tmp_path / "a")
        b = RunLedger(tmp_path / "b")
        for led, plan in ((a, "i"), (b, "j")):
            run_id = led.record_submitted(plan=plan, spec_hash=plan * 4)
            led.record_slice(run_id, seq=1, steps=4, wall_s=0.1)
            led.record_event("checkpoint", "c", run_id=run_id)
            led.record_finished(run_id, status="complete", wall_s=0.2)
        b.record_event("command", "repro-nbody serve")  # run-less event
        assert a.merge(b) == 1
        assert len(a) == 2
        merged = a.runs(plan="j")[0]
        assert merged["run_id"] != b.runs()[0]["run_id"] or len(a.runs()) == 2
        assert [s["steps"] for s in a.slices(merged["run_id"])] == [4]
        kinds = [e["kind"] for e in a.events()]
        assert kinds.count("checkpoint") == 2 and "command" in kinds
        a.close()
        b.close()

    def test_merge_accepts_path(self, tmp_path):
        b = RunLedger(tmp_path / "b")
        b.record_submitted(plan="w")
        b.close()
        with RunLedger(tmp_path / "a") as a:
            assert a.merge(tmp_path / "b") == 1
            assert a.runs(plan="w")


# ---------------------------------------------------------------------------
# Settings precedence
# ---------------------------------------------------------------------------

class TestLedgerSettings:
    def test_off_by_default(self):
        assert ledger_dir() is None
        assert default_ledger() is None

    def test_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "env"))
        assert ledger_dir() == str(tmp_path / "env")
        led = default_ledger()
        assert led is not None and led.path.parent == tmp_path / "env"

    def test_configure_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "env"))
        repro.configure(ledger_dir=str(tmp_path / "cfg"))
        assert ledger_dir() == str(tmp_path / "cfg")
        assert default_ledger().path.parent == tmp_path / "cfg"

    def test_default_ledger_is_shared(self, tmp_path):
        repro.configure(ledger_dir=str(tmp_path))
        assert default_ledger() is default_ledger()


# ---------------------------------------------------------------------------
# RunSession wiring
# ---------------------------------------------------------------------------

class TestSessionLedger:
    def test_solo_run_recorded(self, tmp_path):
        led = RunLedger(tmp_path / "led")
        session = RunSession(
            make_sim(n=48, plan_name="i"), tmp_path / "run",
            checkpoint_every=4, ledger=led,
        )
        session.run(10)
        (row,) = led.runs()
        assert row["source"] == "run" and row["status"] == "complete"
        assert row["plan"] == "i" and row["n"] == 48 and row["steps"] == 10
        assert row["simulated_s"] > 0
        assert row["wall_s"] > 0
        assert sum(s["steps"] for s in led.slices(row["run_id"])) == 10
        kinds = [e["kind"] for e in led.events(row["run_id"])]
        assert "checkpoint" in kinds
        led.close()

    def test_failure_recorded(self, tmp_path):
        led = RunLedger(tmp_path / "led")
        session = RunSession(make_sim(n=48), tmp_path / "run", ledger=led)
        with pytest.raises(Interrupt):
            session.run(10, callback=interrupt_at(3))
        (row,) = led.runs()
        assert row["status"] == "failed"
        assert "Interrupt" in row["error"]
        led.close()

    def test_resume_tagged_as_resume(self, tmp_path):
        led = RunLedger(tmp_path / "led")
        session = RunSession(
            make_sim(n=48), tmp_path / "run", checkpoint_every=2, ledger=led
        )
        with pytest.raises(Interrupt):
            session.run(10, callback=interrupt_at(5))
        resumed = RunSession.resume(tmp_path / "run", ledger=led)
        resumed.run()
        rows = led.runs()
        assert [r["source"] for r in rows] == ["run", "resume"]
        assert rows[1]["status"] == "complete"
        led.close()

    def test_ledger_false_opts_out(self, tmp_path):
        repro.configure(ledger_dir=str(tmp_path / "led"))
        session = RunSession(make_sim(n=48), tmp_path / "run", ledger=False)
        session.run(3)
        assert session.ledger is None
        assert len(RunLedger(tmp_path / "led")) == 0


# ---------------------------------------------------------------------------
# Serve wiring: the acceptance scenario
# ---------------------------------------------------------------------------

class TestServeLedger:
    def _specs(self):
        return [
            small_spec(plan="i", seed=1),
            small_spec(plan="j", seed=2),
            small_spec(plan="jw", seed=3),
        ]

    def test_batched_jobs_fully_accounted(self, tmp_path):
        led = RunLedger(tmp_path / "led")
        specs = self._specs()
        with JobService(
            cache_dir=tmp_path / "cache", max_concurrent_jobs=2,
            steps_per_slice=2, ledger=led,
        ) as svc:
            handles = svc.submit_many(specs)
            dup = svc.submit(specs[0])          # coalesces
            assert dup is handles[0]
            for h in handles:
                h.result(timeout=120)
        # one more service: answered from cache, recorded as such
        with JobService(cache_dir=tmp_path / "cache", ledger=led) as svc2:
            assert svc2.submit(specs[1]).result(timeout=30).from_cache

        rows = led.job_table()
        assert len(rows) == 4
        by_status = {}
        for r in rows:
            by_status.setdefault(r["status"], []).append(r)
        assert len(by_status["complete"]) == 3
        assert len(by_status["cached"]) == 1
        for r in by_status["complete"]:
            assert r["source"] == "serve"
            assert r["spec_hash"] and r["backend"] == "thread"
            assert r["queue_wait_s"] is not None and r["queue_wait_s"] >= 0
            assert r["steps_done"] == r["steps"]
            assert r["slice_p50_s"] > 0 and r["slice_p99_s"] >= r["slice_p50_s"]
            assert r["retries"] == 0
            assert r["metrics_json"] is not None
        assert by_status["complete"][0]["dedup_count"] == 1
        cached_row = by_status["cached"][0]
        assert cached_row["from_cache"] == 1
        kinds = [e["kind"] for e in led.events()]
        assert "dedup" in kinds and "cache_hit" in kinds
        led.close()

    def test_failed_job_recorded(self, tmp_path):
        from repro.exec.faults import FaultInjector

        led = RunLedger(tmp_path / "led")
        with JobService(cache_dir=tmp_path / "cache", ledger=led) as svc:
            handle = svc.submit(
                small_spec(seed=8),
                fault_injector=FaultInjector(
                    seed=1, task_failure_rate=1.0, fail_attempts=99
                ),
            )
            handle.wait(timeout=120)
            assert handle.status == "failed"
        (row,) = led.runs()
        assert row["status"] == "failed" and row["error"]
        led.close()

    def test_batched_with_ledger_matches_solo(self, tmp_path):
        """The determinism gate: ledgering observes, never perturbs."""
        spec = small_spec(plan="jw", seed=9, steps=12)
        pos, vel, t = solo_state(spec)
        repro.configure(ledger_dir=str(tmp_path / "led"))
        with JobService(
            cache_dir=tmp_path / "cache", max_concurrent_jobs=2,
            steps_per_slice=3,
        ) as svc:
            assert svc.ledger is not None
            result = svc.submit(spec).result(timeout=120)
        assert np.array_equal(result.particles.positions, pos)
        assert np.array_equal(result.particles.velocities, vel)
        assert result.time == t
        assert len(RunLedger(tmp_path / "led")) == 1

    def test_labeled_metrics_for_batched_jobs(self, tmp_path):
        """Per-plan timeseries appear under canonical labeled keys."""
        led = RunLedger(tmp_path / "led")
        with obs.capture() as (_, metrics):
            with JobService(
                cache_dir=tmp_path / "cache", steps_per_slice=2, ledger=led
            ) as svc:
                svc.submit(small_spec(plan="i", seed=4)).result(timeout=120)
                svc.submit(small_spec(plan="jw", seed=5)).result(timeout=120)
        snap = metrics.snapshot()
        for plan in ("i", "jw"):
            assert snap[f'serve.jobs_total{{plan="{plan}"}}']["value"] == 1
            assert snap[f'serve.slices_total{{plan="{plan}"}}']["value"] > 0
            assert snap[f'serve.slice_seconds{{plan="{plan}"}}']["count"] > 0
            assert snap[f'serve.queue_wait_seconds{{plan="{plan}"}}']["count"] == 1
        # the export is stable: same registry state, same bytes
        text1 = obs.export.prometheus_text(metrics)
        text2 = obs.export.prometheus_text(metrics)
        assert text1 == text2 and 'serve_slice_seconds{plan="i"' in text1
        led.close()

    def test_describe_reports_ledger_path(self, tmp_path):
        led = RunLedger(tmp_path / "led")
        with JobService(cache_dir=tmp_path / "cache", ledger=led) as svc:
            assert svc.describe()["ledger"] == str(led.path)
        with JobService(cache_dir=tmp_path / "cache", ledger=False) as svc:
            assert svc.describe()["ledger"] is None
        led.close()

"""Unit tests for the energy/momentum diagnostics."""

import numpy as np
import pytest

from repro.nbody.energy import (
    EnergyTracker,
    angular_momentum,
    kinetic_energy,
    momentum,
    potential_energy,
    total_energy,
    virial_ratio,
)
from repro.nbody.particles import ParticleSet


def _two_body():
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    vel = np.array([[0.0, 0.5, 0.0], [0.0, -0.5, 0.0]])
    return ParticleSet(pos, vel, np.array([1.0, 1.0]))


class TestKinetic:
    def test_two_body_value(self):
        assert kinetic_energy(_two_body()) == pytest.approx(0.25)

    def test_at_rest(self):
        p = ParticleSet.zeros(5)
        assert kinetic_energy(p) == 0.0

    def test_mass_weighting(self):
        pos = np.zeros((1, 3))
        vel = np.array([[2.0, 0.0, 0.0]])
        p = ParticleSet(pos, vel, np.array([3.0]))
        assert kinetic_energy(p) == pytest.approx(6.0)


class TestPotential:
    def test_two_body_value(self):
        assert potential_energy(_two_body()) == pytest.approx(-1.0)

    def test_blocking_invariance(self, plummer_small):
        u1 = potential_energy(plummer_small, block=13)
        u2 = potential_energy(plummer_small, block=10**6)
        assert u1 == pytest.approx(u2, rel=1e-12)

    def test_softening_raises_potential(self):
        hard = potential_energy(_two_body(), softening=0.0)
        soft = potential_energy(_two_body(), softening=0.5)
        assert soft > hard  # less negative

    def test_g_scaling(self):
        assert potential_energy(_two_body(), G=2.0) == pytest.approx(-2.0)

    def test_total_energy_is_sum(self):
        p = _two_body()
        assert total_energy(p) == pytest.approx(
            kinetic_energy(p) + potential_energy(p)
        )


class TestMomenta:
    def test_momentum_zero_in_com_frame(self, plummer_small):
        np.testing.assert_allclose(momentum(plummer_small), 0.0, atol=1e-12)

    def test_momentum_value(self):
        p = _two_body()
        np.testing.assert_allclose(momentum(p), 0.0, atol=1e-15)

    def test_angular_momentum_circular_orbit(self):
        pos = np.array([[1.0, 0.0, 0.0]])
        vel = np.array([[0.0, 2.0, 0.0]])
        p = ParticleSet(pos, vel, np.array([3.0]))
        np.testing.assert_allclose(angular_momentum(p), [0.0, 0.0, 6.0])


class TestVirial:
    def test_exact_equilibrium(self):
        # K = 0.5, U = -1 -> -2K/U = 1
        assert virial_ratio(_two_body()) == pytest.approx(0.5)

    def test_zero_potential_raises(self):
        # one isolated body has no potential energy
        p = ParticleSet(np.zeros((1, 3)), np.ones((1, 3)), np.ones(1))
        with pytest.raises(ValueError, match="virial"):
            virial_ratio(p)


class TestEnergyTracker:
    def test_records_and_drift(self):
        p = _two_body()
        t = EnergyTracker()
        t(0.0, p)
        t(1.0, p)
        assert t.max_relative_drift() == 0.0
        assert len(t.energies) == 2

    def test_drift_detects_change(self):
        p = _two_body()
        t = EnergyTracker()
        t(0.0, p)
        p.velocities *= 2.0
        t(1.0, p)
        assert t.max_relative_drift() > 0.0

    def test_empty_tracker_raises(self):
        t = EnergyTracker()
        with pytest.raises(ValueError, match="no samples"):
            _ = t.initial_energy

"""Unit tests for flop accounting and unit systems."""

import numpy as np
import pytest

from repro.nbody.flops import (
    DEFAULT_FLOPS_PER_INTERACTION,
    FLOPS_PER_INTERACTION_GEMS,
    FLOPS_PER_INTERACTION_RSQRT,
    gflops,
    interaction_flops,
    pp_step_interactions,
)
from repro.nbody.units import G_NBODY, G_SI, HENON, UnitSystem


class TestFlops:
    def test_conventions(self):
        assert FLOPS_PER_INTERACTION_GEMS == 20
        assert FLOPS_PER_INTERACTION_RSQRT == 38
        assert DEFAULT_FLOPS_PER_INTERACTION == FLOPS_PER_INTERACTION_GEMS

    def test_interaction_flops(self):
        assert interaction_flops(10) == 200.0
        assert interaction_flops(10, 38) == 380.0

    def test_interaction_flops_rejects_negative(self):
        with pytest.raises(ValueError):
            interaction_flops(-1)

    def test_pp_step_interactions_includes_self(self):
        # GPU kernels evaluate the full N x N matrix
        assert pp_step_interactions(1024) == 1024 * 1024

    def test_pp_step_rejects_negative(self):
        with pytest.raises(ValueError):
            pp_step_interactions(-5)

    def test_gflops(self):
        # 1e9 interactions at 20 flops in 1 s = 20 GFLOPS
        assert gflops(1_000_000_000, 1.0) == pytest.approx(20.0)

    def test_gflops_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            gflops(10, 0.0)


class TestUnits:
    def test_henon_default(self):
        assert HENON.G == G_NBODY == 1.0

    def test_time_unit_roundtrip(self):
        # t^2 = G_sim l^3 / (G_SI m) by construction
        u = UnitSystem()
        t = u.time_s
        assert t**2 == pytest.approx(u.G * u.length_m**3 / (G_SI * u.mass_kg))

    def test_velocity_consistency(self):
        u = UnitSystem()
        assert u.velocity_m_s == pytest.approx(u.length_m / u.time_s)

    def test_energy_consistency(self):
        u = UnitSystem()
        assert u.energy_j == pytest.approx(u.mass_kg * u.velocity_m_s**2)

    def test_one_msun_at_one_pc_timescale_plausible(self):
        # the N-body time unit for (1 Msun, 1 pc) is ~ 10^7 years
        years = HENON.time_in_years(1.0)
        assert 1e6 < years < 1e9

    def test_units_are_frozen(self):
        with pytest.raises(AttributeError):
            HENON.G = 2.0  # type: ignore[misc]

"""Unit tests for :mod:`repro.nbody.forces` — the PP ground truth."""

import numpy as np
import pytest

from repro.nbody.forces import (
    accelerations_from_sources,
    direct_forces,
    direct_forces_naive,
    pairwise_force,
)

EPS = 1e-2


class TestPairwiseForce:
    def test_two_unit_masses_at_unit_distance(self):
        f = pairwise_force([0, 0, 0], [1, 0, 0], 1.0, 1.0)
        np.testing.assert_allclose(f, [1.0, 0.0, 0.0])

    def test_newton_third_law(self):
        xi, xj = np.array([0.1, 0.2, 0.3]), np.array([-1.0, 0.5, 2.0])
        f_ij = pairwise_force(xi, xj, 2.0, 3.0)
        f_ji = pairwise_force(xj, xi, 3.0, 2.0)
        np.testing.assert_allclose(f_ij, -f_ji)

    def test_inverse_square_scaling(self):
        f1 = pairwise_force([0, 0, 0], [1, 0, 0], 1.0, 1.0)
        f2 = pairwise_force([0, 0, 0], [2, 0, 0], 1.0, 1.0)
        assert f1[0] / f2[0] == pytest.approx(4.0)

    def test_g_scaling(self):
        f = pairwise_force([0, 0, 0], [1, 0, 0], 1.0, 1.0, G=6.674e-11)
        assert f[0] == pytest.approx(6.674e-11)

    def test_mass_product_scaling(self):
        f = pairwise_force([0, 0, 0], [1, 0, 0], 2.0, 5.0)
        assert f[0] == pytest.approx(10.0)

    def test_coincident_unsoftened_raises(self):
        with pytest.raises(ValueError, match="coincident"):
            pairwise_force([1, 1, 1], [1, 1, 1], 1.0, 1.0)

    def test_coincident_softened_is_zero(self):
        f = pairwise_force([1, 1, 1], [1, 1, 1], 1.0, 1.0, softening=0.1)
        np.testing.assert_allclose(f, 0.0)


class TestDirectForces:
    def test_matches_naive_reference(self, plummer_small):
        pos, m = plummer_small.positions[:64], plummer_small.masses[:64]
        fast = direct_forces(pos, m, softening=EPS, include_self=False)
        slow = direct_forces_naive(pos, m, softening=EPS)
        np.testing.assert_allclose(fast, slow, rtol=1e-12, atol=1e-14)

    def test_include_self_changes_nothing_with_softening(self, plummer_small):
        pos, m = plummer_small.positions[:50], plummer_small.masses[:50]
        with_self = direct_forces(pos, m, softening=EPS, include_self=True)
        without = direct_forces(pos, m, softening=EPS, include_self=False)
        np.testing.assert_allclose(with_self, without, rtol=1e-12)

    def test_blocking_is_invariant(self, plummer_small):
        pos, m = plummer_small.positions, plummer_small.masses
        a1 = direct_forces(pos, m, softening=EPS, block=7)
        a2 = direct_forces(pos, m, softening=EPS, block=100000)
        np.testing.assert_allclose(a1, a2, rtol=1e-12)

    def test_momentum_conservation(self, plummer_small):
        # sum of m_i a_i = 0 for internal forces
        pos, m = plummer_small.positions, plummer_small.masses
        acc = direct_forces(pos, m, softening=EPS)
        np.testing.assert_allclose(m @ acc, 0.0, atol=1e-12)

    def test_two_body_analytic(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        m = np.array([1.0, 1.0])
        acc = direct_forces(pos, m, softening=0.0, include_self=False)
        np.testing.assert_allclose(acc[0], [1.0, 0.0, 0.0])
        np.testing.assert_allclose(acc[1], [-1.0, 0.0, 0.0])

    def test_softening_weakens_close_encounters(self):
        pos = np.array([[0.0, 0.0, 0.0], [1e-3, 0.0, 0.0]])
        m = np.array([1.0, 1.0])
        hard = direct_forces(pos, m, softening=0.0, include_self=False)
        soft = direct_forces(pos, m, softening=0.1, include_self=False)
        assert abs(soft[0, 0]) < abs(hard[0, 0])

    def test_float32_matches_float64_within_tolerance(self, plummer_small):
        pos, m = plummer_small.positions, plummer_small.masses
        a64 = direct_forces(pos, m, softening=EPS)
        a32 = direct_forces(pos, m, softening=EPS, dtype=np.float32)
        norm = np.linalg.norm(a64, axis=1)
        err = np.linalg.norm(a32 - a64, axis=1) / norm
        assert err.max() < 1e-4


class TestAccelerationsFromSources:
    def test_disjoint_targets_and_sources(self):
        targets = np.array([[0.0, 0.0, 0.0]])
        src = np.array([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
        m = np.array([1.0, 1.0])
        acc = accelerations_from_sources(targets, src, m)
        np.testing.assert_allclose(acc, 0.0, atol=1e-15)  # symmetric pull

    def test_accumulate_into_out(self):
        targets = np.array([[0.0, 0.0, 0.0]])
        src = np.array([[1.0, 0.0, 0.0]])
        m = np.array([1.0])
        out = np.ones((1, 3))
        accelerations_from_sources(targets, src, m, softening=0.0, out=out, accumulate=True)
        np.testing.assert_allclose(out[0], [2.0, 1.0, 1.0])

    def test_overwrite_out(self):
        targets = np.array([[0.0, 0.0, 0.0]])
        src = np.array([[1.0, 0.0, 0.0]])
        m = np.array([1.0])
        out = np.full((1, 3), 7.0)
        accelerations_from_sources(targets, src, m, softening=0.0, out=out, accumulate=False)
        np.testing.assert_allclose(out[0], [1.0, 0.0, 0.0])

    def test_superposition(self, rng):
        targets = rng.standard_normal((10, 3))
        src = rng.standard_normal((20, 3)) + 5.0
        m = rng.uniform(0.5, 2.0, 20)
        full = accelerations_from_sources(targets, src, m, softening=EPS)
        half1 = accelerations_from_sources(targets, src[:10], m[:10], softening=EPS)
        half2 = accelerations_from_sources(targets, src[10:], m[10:], softening=EPS)
        np.testing.assert_allclose(full, half1 + half2, rtol=1e-12)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="targets"):
            accelerations_from_sources(np.zeros(3), np.zeros((1, 3)), np.ones(1))
        with pytest.raises(ValueError, match="src_pos"):
            accelerations_from_sources(np.zeros((1, 3)), np.zeros(3), np.ones(1))
        with pytest.raises(ValueError, match="src_mass"):
            accelerations_from_sources(np.zeros((1, 3)), np.zeros((2, 3)), np.ones(3))

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError, match="block"):
            accelerations_from_sources(
                np.zeros((1, 3)), np.zeros((1, 3)), np.ones(1), block=0
            )

    def test_g_scaling(self, rng):
        targets = rng.standard_normal((4, 3))
        src = rng.standard_normal((6, 3)) + 3.0
        m = np.ones(6)
        a1 = accelerations_from_sources(targets, src, m, softening=EPS)
        a2 = accelerations_from_sources(targets, src, m, softening=EPS, G=2.5)
        np.testing.assert_allclose(a2, 2.5 * a1, rtol=1e-12)

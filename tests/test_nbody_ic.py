"""Unit tests for the initial-condition generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.nbody.energy import kinetic_energy, potential_energy, virial_ratio
from repro.nbody.ic import cold_disc, plummer, two_clusters, uniform_cube, uniform_sphere


class TestPlummer:
    def test_deterministic_given_seed(self):
        a = plummer(100, seed=7)
        b = plummer(100, seed=7)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.velocities, b.velocities)

    def test_different_seeds_differ(self):
        a = plummer(100, seed=7)
        b = plummer(100, seed=8)
        assert not np.array_equal(a.positions, b.positions)

    def test_total_mass(self):
        p = plummer(500, total_mass=3.0, seed=1)
        assert p.total_mass == pytest.approx(3.0)

    def test_com_frame(self):
        p = plummer(500, seed=1)
        np.testing.assert_allclose(p.center_of_mass(), 0.0, atol=1e-12)
        np.testing.assert_allclose(p.com_velocity(), 0.0, atol=1e-12)

    def test_near_virial_equilibrium(self):
        # the Aarseth construction should sample close to 2K = -U
        p = plummer(4000, seed=2)
        assert virial_ratio(p) == pytest.approx(1.0, abs=0.1)

    def test_henon_energy(self):
        # default scale radius gives E ~ -1/4 in N-body units
        p = plummer(4000, seed=3)
        e = kinetic_energy(p) + potential_energy(p)
        assert e == pytest.approx(-0.25, abs=0.035)

    def test_speeds_below_escape_velocity(self):
        p = plummer(1000, seed=4)
        r = np.linalg.norm(p.positions, axis=1)
        v = np.linalg.norm(p.velocities, axis=1)
        a = 3 * np.pi / 16
        v_esc = np.sqrt(2.0) * (r * r + a * a) ** -0.25
        # sampled in the COM frame, so allow a tiny slack from the shift
        assert np.all(v <= v_esc * 1.1)

    def test_rejects_bad_args(self):
        with pytest.raises(WorkloadError):
            plummer(0)
        with pytest.raises(WorkloadError):
            plummer(10, total_mass=-1.0)
        with pytest.raises(WorkloadError):
            plummer(10, scale_radius=0.0)


class TestUniform:
    def test_cube_bounds(self):
        p = uniform_cube(1000, half_width=2.0, seed=1)
        assert np.all(np.abs(p.positions) <= 2.0)

    def test_sphere_bounds(self):
        p = uniform_sphere(1000, radius=1.5, seed=1)
        assert np.all(np.linalg.norm(p.positions, axis=1) <= 1.5)

    def test_sphere_volume_uniformity(self):
        # half the bodies should sit inside r = R * 2^(-1/3)
        p = uniform_sphere(20000, radius=1.0, seed=2)
        r = np.linalg.norm(p.positions, axis=1)
        inner = np.mean(r < 0.5 ** (1.0 / 3.0))
        assert inner == pytest.approx(0.5, abs=0.02)

    def test_cold_start_has_zero_velocity(self):
        p = uniform_cube(100, seed=1)
        assert np.all(p.velocities == 0.0)

    def test_velocity_scale(self):
        p = uniform_cube(5000, velocity_scale=0.3, seed=1)
        assert np.std(p.velocities) == pytest.approx(0.3, rel=0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(WorkloadError):
            uniform_cube(10, half_width=0.0)
        with pytest.raises(WorkloadError):
            uniform_sphere(10, radius=-1.0)


class TestTwoClusters:
    def test_total_count_and_mass(self):
        p = two_clusters(1000, seed=1)
        assert p.n == 1000
        assert p.total_mass == pytest.approx(1.0)

    def test_bimodal_structure(self):
        p = two_clusters(2000, separation=8.0, approach_speed=0.0, seed=1)
        x = p.positions[:, 0]
        # two well-separated lobes around +-4
        assert np.mean(x < 0) == pytest.approx(0.5, abs=0.1)
        assert np.abs(x).mean() > 1.0

    def test_com_frame(self):
        p = two_clusters(500, seed=2)
        np.testing.assert_allclose(p.center_of_mass(), 0.0, atol=1e-12)
        np.testing.assert_allclose(p.com_velocity(), 0.0, atol=1e-12)

    def test_mass_ratio_splits_bodies(self):
        p = two_clusters(300, mass_ratio=2.0, seed=3)
        assert p.n == 300

    def test_rejects_bad_args(self):
        with pytest.raises(WorkloadError):
            two_clusters(1)
        with pytest.raises(WorkloadError):
            two_clusters(100, mass_ratio=0.0)


class TestColdDisc:
    def test_structure(self):
        p = cold_disc(1000, thickness=0.02, seed=1)
        assert p.n == 1000
        # flattened: z-extent much smaller than x/y extent
        assert np.std(p.positions[:, 2]) < 0.2 * np.std(p.positions[:, 0])

    def test_rotation(self):
        p = cold_disc(1000, seed=1)
        # net angular momentum about z is strongly positive
        lz = np.sum(
            p.masses
            * (
                p.positions[:, 0] * p.velocities[:, 1]
                - p.positions[:, 1] * p.velocities[:, 0]
            )
        )
        assert lz > 0.0

    def test_central_mass_fraction(self):
        p = cold_disc(100, central_mass_fraction=0.7, seed=1)
        assert p.masses.max() == pytest.approx(0.7, rel=1e-12)

    def test_rejects_bad_args(self):
        with pytest.raises(WorkloadError):
            cold_disc(1)
        with pytest.raises(WorkloadError):
            cold_disc(100, central_mass_fraction=1.0)

"""Unit tests for the time integrators."""

import numpy as np
import pytest

from repro.nbody.energy import total_energy
from repro.nbody.forces import direct_forces
from repro.nbody.ic import plummer
from repro.nbody.integrators import (
    ExplicitEuler,
    LeapfrogKDK,
    SymplecticEuler,
    VelocityVerlet,
    integrate,
)
from repro.nbody.particles import ParticleSet

EPS = 1e-2


def _kepler_pair():
    """Equal-mass binary on a circular orbit (period 2*pi*r^1.5/sqrt(M))."""
    pos = np.array([[0.5, 0.0, 0.0], [-0.5, 0.0, 0.0]])
    # circular speed for separation 1, total mass 2: v = sqrt(m_other^2/(M r)) ...
    # each body orbits the COM at radius 0.5 with v^2/0.5 = G*1/1^2 -> v = sqrt(0.5)
    v = np.sqrt(0.5)
    vel = np.array([[0.0, v, 0.0], [0.0, -v, 0.0]])
    return ParticleSet(pos, vel, np.array([1.0, 1.0]))


def _accel(masses):
    def fn(positions):
        return direct_forces(positions, masses, softening=0.0, include_self=False)
    return fn


def _orbit_error(integrator, n_steps, period_fraction=1.0):
    p = _kepler_pair()
    period = 2 * np.pi * 0.5 / np.sqrt(0.5)
    dt = period * period_fraction / n_steps
    start = p.positions.copy()
    integrate(p, _accel(p.masses), dt=dt, n_steps=n_steps, integrator=integrator)
    return np.linalg.norm(p.positions - start)


class TestOrders:
    @pytest.mark.parametrize(
        "integrator_cls,expected_order",
        [(ExplicitEuler, 1), (SymplecticEuler, 1), (LeapfrogKDK, 2), (VelocityVerlet, 2)],
    )
    def test_declared_order(self, integrator_cls, expected_order):
        assert integrator_cls.order == expected_order

    @pytest.mark.parametrize("integrator_cls", [LeapfrogKDK, VelocityVerlet])
    def test_second_order_convergence(self, integrator_cls):
        # halving dt should cut the one-period position error ~4x
        e_coarse = _orbit_error(integrator_cls(), 200)
        e_fine = _orbit_error(integrator_cls(), 400)
        ratio = e_coarse / e_fine
        assert 3.0 < ratio < 5.5

    def test_first_order_convergence(self):
        # explicit Euler's global error is O(dt); symplectic Euler is
        # excluded because on a circular orbit its position error behaves
        # better than its formal order (it is conjugate to leapfrog)
        e_coarse = _orbit_error(ExplicitEuler(), 400)
        e_fine = _orbit_error(ExplicitEuler(), 800)
        ratio = e_coarse / e_fine
        assert 1.5 < ratio < 3.0

    def test_symplectic_euler_tracks_orbit(self):
        # coarse sanity: stays bounded near the orbit over one period
        err = _orbit_error(SymplecticEuler(), 800)
        assert err < 0.1


class TestLeapfrogProperties:
    def test_energy_conservation_on_orbit(self):
        p = _kepler_pair()
        e0 = total_energy(p)
        integrate(p, _accel(p.masses), dt=0.01, n_steps=2000, integrator=LeapfrogKDK())
        e1 = total_energy(p)
        assert abs(e1 - e0) / abs(e0) < 1e-3

    def test_time_reversibility(self):
        p = _kepler_pair()
        start_pos = p.positions.copy()
        lf = LeapfrogKDK()
        integrate(p, _accel(p.masses), dt=0.01, n_steps=100, integrator=lf)
        p.velocities *= -1.0
        integrate(p, _accel(p.masses), dt=0.01, n_steps=100, integrator=LeapfrogKDK())
        np.testing.assert_allclose(p.positions, start_pos, atol=1e-9)

    def test_kdk_equals_velocity_verlet(self):
        pa = _kepler_pair()
        pb = _kepler_pair()
        integrate(pa, _accel(pa.masses), dt=0.02, n_steps=50, integrator=LeapfrogKDK())
        integrate(pb, _accel(pb.masses), dt=0.02, n_steps=50, integrator=VelocityVerlet())
        np.testing.assert_allclose(pa.positions, pb.positions, atol=1e-10)
        np.testing.assert_allclose(pa.velocities, pb.velocities, atol=1e-10)

    def test_acceleration_cache_reused(self):
        calls = {"n": 0}
        p = _kepler_pair()

        def counting_accel(positions):
            calls["n"] += 1
            return direct_forces(positions, p.masses, softening=0.0, include_self=False)

        integrate(p, counting_accel, dt=0.01, n_steps=10, integrator=LeapfrogKDK())
        # one eval for the very first half-kick + one per step
        assert calls["n"] == 11


class TestIntegrateDriver:
    def test_callback_cadence(self):
        p = plummer(32, seed=1)
        times = []
        integrate(
            p,
            _accel(p.masses),
            dt=0.1,
            n_steps=10,
            callback=lambda t, _: times.append(t),
            callback_every=3,
        )
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(1.0)
        # steps 3, 6, 9 plus the final step 10
        assert len(times) == 5

    def test_zero_steps_allowed(self):
        p = plummer(8, seed=1)
        before = p.positions.copy()
        integrate(p, _accel(p.masses), dt=0.1, n_steps=0)
        np.testing.assert_array_equal(p.positions, before)

    def test_rejects_bad_args(self):
        p = plummer(8, seed=1)
        with pytest.raises(ValueError, match="dt"):
            integrate(p, _accel(p.masses), dt=0.0, n_steps=1)
        with pytest.raises(ValueError, match="n_steps"):
            integrate(p, _accel(p.masses), dt=0.1, n_steps=-1)
        with pytest.raises(ValueError, match="callback_every"):
            integrate(p, _accel(p.masses), dt=0.1, n_steps=1, callback_every=0)

    def test_returns_same_object(self):
        p = plummer(8, seed=1)
        out = integrate(p, _accel(p.masses), dt=0.1, n_steps=1)
        assert out is p

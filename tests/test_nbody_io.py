"""Tests for snapshot I/O."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.nbody.io import SnapshotSeries, load_snapshot, save_snapshot
from repro.nbody.ic import plummer


class TestSnapshotRoundtrip:
    def test_roundtrip_preserves_state(self, tmp_path, plummer_small):
        path = save_snapshot(tmp_path / "snap", plummer_small, time=1.5,
                             metadata={"plan": "jw", "theta": 0.6})
        loaded, t, meta = load_snapshot(path)
        np.testing.assert_array_equal(loaded.positions, plummer_small.positions)
        np.testing.assert_array_equal(loaded.velocities, plummer_small.velocities)
        np.testing.assert_array_equal(loaded.masses, plummer_small.masses)
        assert t == 1.5
        assert meta == {"plan": "jw", "theta": 0.6}

    def test_extension_appended(self, tmp_path, plummer_small):
        path = save_snapshot(tmp_path / "snap", plummer_small)
        assert path.suffix == ".npz"

    def test_explicit_npz_not_doubled(self, tmp_path, plummer_small):
        path = save_snapshot(tmp_path / "snap.npz", plummer_small)
        assert path.name == "snap.npz"

    def test_creates_parent_dirs(self, tmp_path, plummer_small):
        path = save_snapshot(tmp_path / "a" / "b" / "snap", plummer_small)
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WorkloadError, match="not found"):
            load_snapshot(tmp_path / "nope.npz")

    def test_non_snapshot_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(WorkloadError, match="not a repro snapshot"):
            load_snapshot(path)

    def test_unserialisable_metadata_rejected(self, tmp_path, plummer_small):
        with pytest.raises(WorkloadError, match="JSON"):
            save_snapshot(tmp_path / "snap", plummer_small, metadata={"x": object()})

    def test_future_format_rejected(self, tmp_path, plummer_small):
        path = save_snapshot(tmp_path / "snap", plummer_small)
        data = dict(np.load(path))
        data["format_version"] = np.int64(999)
        np.savez(path, **data)
        with pytest.raises(WorkloadError, match="newer"):
            load_snapshot(path)


class TestSnapshotSeries:
    def test_numbered_files(self, tmp_path, plummer_small):
        series = SnapshotSeries(tmp_path / "run")
        series.write(plummer_small, time=0.0)
        series.write(plummer_small, time=0.1)
        assert len(series) == 2
        assert series.paths[0].name == "run_0000.npz"
        assert series.paths[1].name == "run_0001.npz"

    def test_iteration(self, tmp_path, plummer_small):
        series = SnapshotSeries(tmp_path / "run")
        series.write(plummer_small, time=0.0, metadata={"k": 0})
        series.write(plummer_small, time=0.5, metadata={"k": 1})
        out = list(series)
        assert [t for _, t, _ in out] == [0.0, 0.5]
        assert [m["k"] for _, _, m in out] == [0, 1]

    def test_simulation_callback(self, tmp_path):
        from repro.core import IParallelPlan, PlanConfig, Simulation

        particles = plummer(64, seed=61)
        sim = Simulation(particles, IParallelPlan(PlanConfig(softening=1e-2)), dt=1e-3)
        series = SnapshotSeries(tmp_path / "traj")
        sim.run(4, callback=series.from_simulation, callback_every=2)
        assert len(series) == 2
        _, t_last, meta = list(series)[-1]
        assert t_last == pytest.approx(4e-3)
        assert meta["plan"] == "i"

    def test_simulation_callback_metadata_round_trip(self, tmp_path):
        """from_simulation records the steps/force-passes split and the
        simulated time, and all of it survives the .npz round trip."""
        from repro.core import IParallelPlan, PlanConfig, Simulation

        particles = plummer(64, seed=62)
        sim = Simulation(particles, IParallelPlan(PlanConfig(softening=1e-2)), dt=1e-3)
        series = SnapshotSeries(tmp_path / "traj")
        sim.run(3, callback=series.from_simulation, callback_every=3)
        assert len(series) == 1
        loaded, t_last, meta = next(iter(series))
        assert t_last == sim.time
        assert meta["steps"] == 3
        # first step bootstraps the force cache: one extra pass
        assert meta["force_passes"] == 4
        assert meta["force_passes"] == sim.record.force_passes
        assert meta["simulated_seconds"] == sim.record.simulated_seconds
        assert np.array_equal(loaded.positions, sim.particles.positions)

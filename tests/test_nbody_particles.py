"""Unit tests for :mod:`repro.nbody.particles`."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.nbody.particles import ParticleSet


def _simple_set():
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
    vel = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    m = np.array([1.0, 2.0, 3.0])
    return ParticleSet(pos, vel, m)


class TestConstruction:
    def test_basic_properties(self):
        p = _simple_set()
        assert p.n == 3
        assert len(p) == 3
        assert p.total_mass == pytest.approx(6.0)

    def test_arrays_are_float64_contiguous_copies(self):
        pos = np.zeros((4, 3), dtype=np.float32)
        p = ParticleSet(pos, np.zeros((4, 3)), np.ones(4))
        assert p.positions.dtype == np.float64
        assert p.positions.flags["C_CONTIGUOUS"]
        pos[0, 0] = 99.0
        assert p.positions[0, 0] == 0.0  # owned copy, not a view

    def test_rejects_bad_position_shape(self):
        with pytest.raises(WorkloadError, match="positions"):
            ParticleSet(np.zeros((3, 2)), np.zeros((3, 2)), np.ones(3))

    def test_rejects_mismatched_velocities(self):
        with pytest.raises(WorkloadError, match="velocities"):
            ParticleSet(np.zeros((3, 3)), np.zeros((2, 3)), np.ones(3))

    def test_rejects_wrong_mass_shape(self):
        with pytest.raises(WorkloadError, match="masses"):
            ParticleSet(np.zeros((3, 3)), np.zeros((3, 3)), np.ones(4))

    def test_rejects_nonpositive_masses(self):
        with pytest.raises(WorkloadError, match="masses"):
            ParticleSet(np.zeros((2, 3)), np.zeros((2, 3)), np.array([1.0, 0.0]))

    def test_rejects_nonfinite_positions(self):
        pos = np.zeros((2, 3))
        pos[1, 2] = np.nan
        with pytest.raises(WorkloadError, match="finite"):
            ParticleSet(pos, np.zeros((2, 3)), np.ones(2))

    def test_zeros_constructor(self):
        p = ParticleSet.zeros(5, mass=2.0)
        assert p.n == 5
        assert p.total_mass == pytest.approx(10.0)
        assert np.all(p.positions == 0.0)

    def test_zeros_rejects_nonpositive_n(self):
        with pytest.raises(WorkloadError):
            ParticleSet.zeros(0)


class TestFrameOperations:
    def test_center_of_mass_weighting(self):
        p = _simple_set()
        com = p.center_of_mass()
        expected = (1 * np.array([0, 0, 0]) + 2 * np.array([1, 0, 0]) + 3 * np.array([0, 2, 0])) / 6
        np.testing.assert_allclose(com, expected)

    def test_to_com_frame_zeroes_com_and_momentum(self):
        p = _simple_set()
        p.to_com_frame()
        np.testing.assert_allclose(p.center_of_mass(), 0.0, atol=1e-14)
        np.testing.assert_allclose(p.com_velocity(), 0.0, atol=1e-14)

    def test_shift_positions_only(self):
        p = _simple_set()
        before_v = p.velocities.copy()
        p.shift(np.array([1.0, 1.0, 1.0]))
        assert p.positions[0, 0] == 1.0
        np.testing.assert_array_equal(p.velocities, before_v)

    def test_shift_with_velocity(self):
        p = _simple_set()
        p.shift(np.zeros(3), np.array([0.0, 0.0, 5.0]))
        assert p.velocities[0, 2] == 5.0

    def test_bounding_box(self):
        p = _simple_set()
        lo, hi = p.bounding_box()
        np.testing.assert_array_equal(lo, [0.0, 0.0, 0.0])
        np.testing.assert_array_equal(hi, [1.0, 2.0, 0.0])

    def test_bounding_cube_contains_all_bodies(self):
        p = _simple_set()
        center, half = p.bounding_cube()
        assert np.all(np.abs(p.positions - center) <= half)

    def test_bounding_cube_is_cubic(self):
        p = _simple_set()
        _, half = p.bounding_cube()
        assert half >= 1.0  # half the largest extent (2.0 in y)


class TestCopySelect:
    def test_copy_is_deep(self):
        p = _simple_set()
        q = p.copy()
        q.positions[0, 0] = 42.0
        assert p.positions[0, 0] == 0.0

    def test_select_subset(self):
        p = _simple_set()
        q = p.select(np.array([2, 0]))
        assert q.n == 2
        assert q.masses[0] == 3.0
        assert q.masses[1] == 1.0

    def test_permuted_roundtrip(self):
        p = _simple_set()
        order = np.array([2, 0, 1])
        q = p.permuted(order)
        np.testing.assert_array_equal(q.positions[0], p.positions[2])

    def test_permuted_rejects_non_permutation(self):
        p = _simple_set()
        with pytest.raises(WorkloadError, match="permutation"):
            p.permuted(np.array([0, 0, 1]))

    def test_concatenate(self):
        p = _simple_set()
        q = ParticleSet.concatenate([p, p])
        assert q.n == 6
        assert q.total_mass == pytest.approx(12.0)

    def test_concatenate_empty_rejected(self):
        with pytest.raises(WorkloadError):
            ParticleSet.concatenate([])

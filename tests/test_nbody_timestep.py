"""Tests for time-step criteria and the adaptive leapfrog driver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nbody.energy import total_energy
from repro.nbody.forces import direct_forces
from repro.nbody.ic import plummer, two_clusters
from repro.nbody.timestep import (
    AdaptiveLeapfrog,
    acceleration_timestep,
    suggest_timestep,
)

EPS = 1e-2


def _accel(masses):
    def fn(x):
        return direct_forces(x, masses, softening=EPS, include_self=False)
    return fn


class TestCriterion:
    def test_formula(self):
        acc = np.array([[3.0, 4.0, 0.0]])  # |a| = 5
        dt = acceleration_timestep(acc, softening=0.05, eta=0.1)
        assert dt[0] == pytest.approx(0.1 * np.sqrt(0.05 / 5.0))

    def test_zero_acceleration_unconstrained(self):
        dt = acceleration_timestep(np.zeros((1, 3)), softening=0.05)
        assert np.isinf(dt[0])

    def test_stronger_force_smaller_step(self):
        acc = np.array([[1.0, 0.0, 0.0], [100.0, 0.0, 0.0]])
        dt = acceleration_timestep(acc, softening=0.05)
        assert dt[1] < dt[0]

    def test_suggest_takes_minimum(self):
        acc = np.array([[1.0, 0.0, 0.0], [100.0, 0.0, 0.0]])
        dt = suggest_timestep(acc, softening=0.05)
        assert dt == pytest.approx(acceleration_timestep(acc, softening=0.05).min())

    def test_dt_max_clamp(self):
        acc = np.full((2, 3), 1e-12)
        assert suggest_timestep(acc, softening=0.05, dt_max=0.5) == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            acceleration_timestep(np.ones((1, 3)), softening=0.0)
        with pytest.raises(ConfigurationError):
            acceleration_timestep(np.ones((1, 3)), softening=0.1, eta=0.0)


class TestAdaptiveLeapfrog:
    def test_reaches_t_end_exactly(self):
        p = plummer(64, seed=81)
        driver = AdaptiveLeapfrog(softening=EPS, eta=0.05, dt_max=0.01)
        t = driver.run(p, _accel(p.masses), t_end=0.05)
        assert t == pytest.approx(0.05)
        assert driver.n_steps >= 5

    def test_energy_bounded(self):
        p = plummer(128, seed=82)
        e0 = total_energy(p, softening=EPS)
        driver = AdaptiveLeapfrog(softening=EPS, eta=0.02, dt_max=5e-3)
        driver.run(p, _accel(p.masses), t_end=0.1)
        e1 = total_energy(p, softening=EPS)
        assert abs(e1 - e0) / abs(e0) < 0.01

    def test_steps_shrink_in_dense_regions(self):
        # colliding clusters develop tighter constraints than a relaxed one
        relaxed = plummer(128, seed=83)
        colliding = two_clusters(128, separation=0.5, approach_speed=2.0, seed=83)
        dr = AdaptiveLeapfrog(softening=EPS, eta=0.02, dt_max=1.0)
        dc = AdaptiveLeapfrog(softening=EPS, eta=0.02, dt_max=1.0)
        dr.run(relaxed, _accel(relaxed.masses), t_end=0.02)
        dc.run(colliding, _accel(colliding.masses), t_end=0.02)
        assert min(dc.history) < min(dr.history)

    def test_growth_limited(self):
        p = plummer(64, seed=84)
        driver = AdaptiveLeapfrog(softening=EPS, eta=0.05, dt_max=0.05, growth_limit=1.2)
        driver.run(p, _accel(p.masses), t_end=0.05)
        h = driver.history
        for a, b in zip(h, h[1:-1]):  # last step may be truncated to t_end
            assert b <= a * 1.2 + 1e-15

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveLeapfrog(softening=EPS, growth_limit=1.0)
        p = plummer(8, seed=85)
        with pytest.raises(ConfigurationError):
            AdaptiveLeapfrog(softening=EPS).run(p, _accel(p.masses), t_end=0.0)

    def test_works_with_plan_forces(self):
        from repro.core import JwParallelPlan, PlanConfig

        p = plummer(256, seed=86)
        plan = JwParallelPlan(PlanConfig(softening=EPS))
        driver = AdaptiveLeapfrog(softening=EPS, eta=0.05, dt_max=2e-3)
        t = driver.run(p, plan.accel_fn(p.masses), t_end=6e-3)
        assert t == pytest.approx(6e-3)

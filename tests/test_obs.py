"""Tests for the repro.obs tracing & metrics subsystem."""

import json

import pytest

from repro import obs
from repro.nbody.ic import plummer
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from repro.obs.tracing import NULL_SPAN, SpanTracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts disabled with empty global state, and leaves it so."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Span tracer
# ---------------------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_and_attributes(self):
        tr = SpanTracer()
        with tr.span("outer", plan="jw") as outer:
            with tr.span("inner", n=128) as inner:
                inner.set(extra=1)
        assert len(tr) == 2
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.parent_id is None
        assert outer.depth == 0
        assert inner.attrs == {"n": 128, "extra": 1}
        assert outer.attrs == {"plan": "jw"}
        assert tr.children_of(outer.span_id) == [inner]

    def test_wall_durations_monotone(self):
        tr = SpanTracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        a = tr.by_name("a")[0]
        b = tr.by_name("b")[0]
        assert a.t0_wall <= b.t0_wall
        assert b.t1_wall <= a.t1_wall
        assert a.wall_seconds >= b.wall_seconds >= 0.0

    def test_sim_spans_and_clock(self):
        tr = SpanTracer()
        tr.sim_span("kernel", 0.0, 0.5, track="device", plan="i")
        tr.advance_sim(0.5)
        assert tr.sim_time == pytest.approx(0.5)
        tr.sim_span("kernel", tr.sim_time, tr.sim_time + 0.25)
        spans = tr.by_name("kernel")
        assert [s.sim_seconds for s in spans] == pytest.approx([0.5, 0.25])
        assert spans[0].kind == "sim"
        with pytest.raises(ValueError):
            tr.sim_span("bad", 1.0, 0.5)
        with pytest.raises(ValueError):
            tr.advance_sim(-1.0)

    def test_instant_and_reset(self):
        tr = SpanTracer()
        tr.instant("evt", x=1)
        assert tr.spans[0].kind == "instant"
        assert tr.spans[0].wall_seconds == 0.0
        tr.reset()
        assert len(tr) == 0
        assert tr.sim_time == 0.0

    def test_exception_closes_span(self):
        tr = SpanTracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert tr.current is None
        assert tr.by_name("boom")[0].t1_wall is not None


class TestFacade:
    def test_disabled_is_noop(self):
        assert not obs.enabled
        with obs.span("x", a=1) as sp:
            sp.set(b=2)
        obs.instant("y")
        obs.sim_span("z", 0.0, 1.0)
        obs.advance_sim(1.0)
        obs.inc("c")
        obs.observe("h", 1.0)
        obs.set_gauge("g", 1.0)
        assert sp is NULL_SPAN
        assert len(obs.tracer()) == 0
        assert len(obs.metrics()) == 0
        assert obs.sim_now() == 0.0

    def test_direct_assignment_toggles(self):
        obs.enabled = True
        with obs.span("on"):
            pass
        obs.enabled = False
        with obs.span("off"):
            pass
        names = [s.name for s in obs.tracer().spans]
        assert names == ["on"]

    def test_capture_restores_state(self):
        with obs.capture() as (tr, mx):
            assert obs.enabled
            with obs.span("inside"):
                obs.inc("n")
        assert not obs.enabled
        assert len(tr.by_name("inside")) == 1
        assert mx.counter("n").value == 1


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_extremes(self):
        g = Gauge("occ")
        for v in (0.5, 0.9, 0.2):
            g.set(v)
        assert g.value == 0.2
        assert g.min == 0.2
        assert g.max == 0.9

    def test_histogram_percentiles(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        s = h.to_dict()
        assert s["p50"] == pytest.approx(50.5)
        assert s["p99"] == pytest.approx(99.01)

    def test_percentile_edge_cases(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_registry_type_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        assert "x" in reg
        assert len(reg) == 1
        snap = reg.snapshot()
        assert snap["x"]["type"] == "counter"


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExport:
    def _traced_run(self, n_steps=2):
        from repro.core.plans import JwParallelPlan, PlanConfig
        from repro.core.simulation import Simulation

        particles = plummer(128, seed=7)
        sim = Simulation(
            particles, JwParallelPlan(PlanConfig(softening=1e-2)), dt=1e-3
        )
        with obs.capture() as (tr, mx):
            sim.run(n_steps)
        return tr, mx

    def test_chrome_trace_valid_and_consistent(self, tmp_path):
        tr, mx = self._traced_run()
        out = obs.export.write_chrome_trace(tmp_path / "t.json", tr, mx)
        doc = json.loads(out.read_text())
        evs = doc["traceEvents"]
        assert doc["otherData"]["n_spans"] == len(tr)
        assert evs, "trace has no events"
        for e in evs:
            if e["ph"] == "M":
                continue
            assert e["ts"] >= 0.0
            assert e.get("dur", 0.0) >= 0.0
        # per-(pid, tid) start times are monotonically non-decreasing
        lanes = {}
        for e in evs:
            if e["ph"] != "X":
                continue
            key = (e["pid"], e["tid"])
            assert e["ts"] >= lanes.get(key, 0.0)
            lanes[key] = e["ts"]
        # simulated hardware shows up as its own process with named tracks
        names = {
            e["args"]["name"]
            for e in evs
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "device" in names and "pcie" in names

    def test_end_to_end_step_children(self):
        tr, _ = self._traced_run(n_steps=3)
        steps = tr.by_name("step")
        assert len(steps) == 3
        for st in steps:
            kinds = {c.name for c in tr.children_of(st.span_id)}
            assert {"kernel", "host", "transfer"} <= kinds
        # one span per simulation step, each with positive sim durations
        kernels = [s for s in tr.by_name("kernel") if s.kind == "sim"]
        assert len(kernels) >= 3
        assert all(k.sim_seconds > 0 for k in kernels)

    def test_sim_clock_advances_per_step(self):
        tr, _ = self._traced_run(n_steps=2)
        assert tr.sim_time > 0.0
        kernels = [s for s in tr.by_name("kernel") if s.kind == "sim"]
        starts = [k.t0_sim for k in kernels]
        assert starts == sorted(starts)

    def test_jsonl_round_trip(self, tmp_path):
        tr, mx = self._traced_run()
        out = obs.export.write_jsonl(tmp_path / "t.jsonl", tr, mx)
        recs = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(recs) == len(tr) + len(mx)
        span_recs = [r for r in recs if "t0_wall" in r]
        assert any(r["name"] == "simulation.run" for r in span_recs)

    def test_summary_markdown(self):
        tr, mx = self._traced_run()
        md = obs.export.summary_markdown(tr, mx)
        assert "## Span summary" in md
        assert "simulation.run" in md
        assert "interactions_total" in md

    def test_metrics_collected(self):
        _, mx = self._traced_run(n_steps=2)
        snap = mx.snapshot()
        assert snap["interactions_total"]["value"] > 0
        assert snap["step_seconds"]["count"] >= 2
        assert 0.0 < snap["occupancy"]["value"] <= 1.0
        assert snap["tree_depth"]["value"] >= 1

    def test_disabled_run_records_nothing(self):
        from repro.core.plans import IParallelPlan, PlanConfig
        from repro.core.simulation import Simulation

        sim = Simulation(
            plummer(64, seed=9), IParallelPlan(PlanConfig(softening=1e-2)), dt=1e-3
        )
        sim.run(2)
        assert len(obs.tracer()) == 0
        assert len(obs.metrics()) == 0


class TestExecutionTraceEmission:
    def test_cu_tracks_present(self):
        tr, _ = self._run()
        cu = {s.track for s in tr.spans if s.track and s.track.startswith("CU")}
        assert cu, "no per-compute-unit spans emitted"

    def _run(self):
        from repro.core.plans import JwParallelPlan, PlanConfig
        from repro.core.simulation import Simulation

        sim = Simulation(
            plummer(256, seed=11), JwParallelPlan(PlanConfig(softening=1e-2)), dt=1e-3
        )
        with obs.capture() as (tr, mx):
            sim.run(1)
        return tr, mx

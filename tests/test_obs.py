"""Tests for the repro.obs tracing & metrics subsystem."""

import json

import pytest

from repro import obs
from repro.nbody.ic import plummer
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from repro.obs.tracing import NULL_SPAN, SpanTracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts disabled with empty global state, and leaves it so."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Span tracer
# ---------------------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_and_attributes(self):
        tr = SpanTracer()
        with tr.span("outer", plan="jw") as outer:
            with tr.span("inner", n=128) as inner:
                inner.set(extra=1)
        assert len(tr) == 2
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.parent_id is None
        assert outer.depth == 0
        assert inner.attrs == {"n": 128, "extra": 1}
        assert outer.attrs == {"plan": "jw"}
        assert tr.children_of(outer.span_id) == [inner]

    def test_wall_durations_monotone(self):
        tr = SpanTracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        a = tr.by_name("a")[0]
        b = tr.by_name("b")[0]
        assert a.t0_wall <= b.t0_wall
        assert b.t1_wall <= a.t1_wall
        assert a.wall_seconds >= b.wall_seconds >= 0.0

    def test_sim_spans_and_clock(self):
        tr = SpanTracer()
        tr.sim_span("kernel", 0.0, 0.5, track="device", plan="i")
        tr.advance_sim(0.5)
        assert tr.sim_time == pytest.approx(0.5)
        tr.sim_span("kernel", tr.sim_time, tr.sim_time + 0.25)
        spans = tr.by_name("kernel")
        assert [s.sim_seconds for s in spans] == pytest.approx([0.5, 0.25])
        assert spans[0].kind == "sim"
        with pytest.raises(ValueError):
            tr.sim_span("bad", 1.0, 0.5)
        with pytest.raises(ValueError):
            tr.advance_sim(-1.0)

    def test_instant_and_reset(self):
        tr = SpanTracer()
        tr.instant("evt", x=1)
        assert tr.spans[0].kind == "instant"
        assert tr.spans[0].wall_seconds == 0.0
        tr.reset()
        assert len(tr) == 0
        assert tr.sim_time == 0.0

    def test_exception_closes_span(self):
        tr = SpanTracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert tr.current is None
        assert tr.by_name("boom")[0].t1_wall is not None


class TestFacade:
    def test_disabled_is_noop(self):
        assert not obs.enabled
        with obs.span("x", a=1) as sp:
            sp.set(b=2)
        obs.instant("y")
        obs.sim_span("z", 0.0, 1.0)
        obs.advance_sim(1.0)
        obs.inc("c")
        obs.observe("h", 1.0)
        obs.set_gauge("g", 1.0)
        assert sp is NULL_SPAN
        assert len(obs.tracer()) == 0
        assert len(obs.metrics()) == 0
        assert obs.sim_now() == 0.0

    def test_direct_assignment_toggles(self):
        obs.enabled = True
        with obs.span("on"):
            pass
        obs.enabled = False
        with obs.span("off"):
            pass
        names = [s.name for s in obs.tracer().spans]
        assert names == ["on"]

    def test_capture_restores_state(self):
        with obs.capture() as (tr, mx):
            assert obs.enabled
            with obs.span("inside"):
                obs.inc("n")
        assert not obs.enabled
        assert len(tr.by_name("inside")) == 1
        assert mx.counter("n").value == 1


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_extremes(self):
        g = Gauge("occ")
        for v in (0.5, 0.9, 0.2):
            g.set(v)
        assert g.value == 0.2
        assert g.min == 0.2
        assert g.max == 0.9

    def test_histogram_percentiles(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        s = h.to_dict()
        assert s["p50"] == pytest.approx(50.5)
        assert s["p99"] == pytest.approx(99.01)

    def test_percentile_edge_cases(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_registry_type_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        assert "x" in reg
        assert len(reg) == 1
        snap = reg.snapshot()
        assert snap["x"]["type"] == "counter"


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExport:
    def _traced_run(self, n_steps=2):
        from repro.core.plans import JwParallelPlan, PlanConfig
        from repro.core.simulation import Simulation

        particles = plummer(128, seed=7)
        sim = Simulation(
            particles, JwParallelPlan(PlanConfig(softening=1e-2)), dt=1e-3
        )
        with obs.capture() as (tr, mx):
            sim.run(n_steps)
        return tr, mx

    def test_chrome_trace_valid_and_consistent(self, tmp_path):
        tr, mx = self._traced_run()
        out = obs.export.write_chrome_trace(tmp_path / "t.json", tr, mx)
        doc = json.loads(out.read_text())
        evs = doc["traceEvents"]
        assert doc["otherData"]["n_spans"] == len(tr)
        assert evs, "trace has no events"
        for e in evs:
            if e["ph"] == "M":
                continue
            assert e["ts"] >= 0.0
            assert e.get("dur", 0.0) >= 0.0
        # per-(pid, tid) start times are monotonically non-decreasing
        lanes = {}
        for e in evs:
            if e["ph"] != "X":
                continue
            key = (e["pid"], e["tid"])
            assert e["ts"] >= lanes.get(key, 0.0)
            lanes[key] = e["ts"]
        # simulated hardware shows up as its own process with named tracks
        names = {
            e["args"]["name"]
            for e in evs
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "device" in names and "pcie" in names

    def test_end_to_end_step_children(self):
        tr, _ = self._traced_run(n_steps=3)
        steps = tr.by_name("step")
        assert len(steps) == 3
        for st in steps:
            kinds = {c.name for c in tr.children_of(st.span_id)}
            assert {"kernel", "host", "transfer"} <= kinds
        # one span per simulation step, each with positive sim durations
        kernels = [s for s in tr.by_name("kernel") if s.kind == "sim"]
        assert len(kernels) >= 3
        assert all(k.sim_seconds > 0 for k in kernels)

    def test_sim_clock_advances_per_step(self):
        tr, _ = self._traced_run(n_steps=2)
        assert tr.sim_time > 0.0
        kernels = [s for s in tr.by_name("kernel") if s.kind == "sim"]
        starts = [k.t0_sim for k in kernels]
        assert starts == sorted(starts)

    def test_jsonl_round_trip(self, tmp_path):
        tr, mx = self._traced_run()
        out = obs.export.write_jsonl(tmp_path / "t.jsonl", tr, mx)
        recs = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(recs) == len(tr) + len(mx)
        span_recs = [r for r in recs if "t0_wall" in r]
        assert any(r["name"] == "simulation.run" for r in span_recs)

    def test_summary_markdown(self):
        tr, mx = self._traced_run()
        md = obs.export.summary_markdown(tr, mx)
        assert "## Span summary" in md
        assert "simulation.run" in md
        assert "interactions_total" in md

    def test_metrics_collected(self):
        _, mx = self._traced_run(n_steps=2)
        snap = mx.snapshot()
        assert snap["interactions_total"]["value"] > 0
        assert snap["step_seconds"]["count"] >= 2
        assert 0.0 < snap["occupancy"]["value"] <= 1.0
        assert snap["tree_depth"]["value"] >= 1

    def test_disabled_run_records_nothing(self):
        from repro.core.plans import IParallelPlan, PlanConfig
        from repro.core.simulation import Simulation

        sim = Simulation(
            plummer(64, seed=9), IParallelPlan(PlanConfig(softening=1e-2)), dt=1e-3
        )
        sim.run(2)
        assert len(obs.tracer()) == 0
        assert len(obs.metrics()) == 0


class TestExecutionTraceEmission:
    def test_cu_tracks_present(self):
        tr, _ = self._run()
        cu = {s.track for s in tr.spans if s.track and s.track.startswith("CU")}
        assert cu, "no per-compute-unit spans emitted"

    def _run(self):
        from repro.core.plans import JwParallelPlan, PlanConfig
        from repro.core.simulation import Simulation

        sim = Simulation(
            plummer(256, seed=11), JwParallelPlan(PlanConfig(softening=1e-2)), dt=1e-3
        )
        with obs.capture() as (tr, mx):
            sim.run(1)
        return tr, mx


# ---------------------------------------------------------------------------
# Labeled metrics, bounded reservoirs, Prometheus exposition
# ---------------------------------------------------------------------------


class TestLabeledMetrics:
    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", labels={"plan": "jw", "backend": "thread"})
        b = reg.counter("hits", labels={"backend": "thread", "plan": "jw"})
        assert a is b
        assert a.key == 'hits{backend="thread",plan="jw"}'

    def test_values_stringified(self):
        reg = MetricsRegistry()
        m = reg.gauge("depth", labels={"n": 4096})
        assert m.labels == {"n": "4096"}
        assert reg.get("depth", labels={"n": "4096"}) is m

    def test_unlabeled_key_is_bare_name(self):
        reg = MetricsRegistry()
        reg.counter("total").inc()
        assert "total" in reg.snapshot()
        assert reg.counter("total", labels={}).value == 1

    def test_bad_label_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="label names"):
            reg.counter("x", labels={1: "a"})
        with pytest.raises(ValueError, match="label names"):
            reg.counter("x", labels={"": "a"})

    def test_type_bound_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("serve.jobs", labels={"plan": "i"})
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("serve.jobs", labels={"plan": "j"})

    def test_by_name_and_names(self):
        reg = MetricsRegistry()
        reg.counter("jobs", labels={"plan": "j"}).inc()
        reg.counter("jobs", labels={"plan": "i"}).inc(2)
        reg.counter("jobs").inc(3)
        variants = reg.by_name("jobs")
        assert [m.key for m in variants] == [
            "jobs", 'jobs{plan="i"}', 'jobs{plan="j"}'
        ]
        assert reg.names() == ["jobs"]

    def test_snapshot_keys_and_identity(self):
        reg = MetricsRegistry()
        reg.histogram("lat", labels={"plan": "w"}).observe(1.0)
        snap = reg.snapshot()
        m = snap['lat{plan="w"}']
        assert m["name"] == "lat" and m["labels"] == {"plan": "w"}

    def test_facade_helpers_accept_labels(self):
        obs.enable(reset=True)
        obs.inc("c", labels={"p": "a"})
        obs.set_gauge("g", 2.0, labels={"p": "a"})
        obs.observe("h", 0.5, labels={"p": "a"})
        snap = obs.metrics().snapshot()
        assert snap['c{p="a"}']["value"] == 1
        assert snap['g{p="a"}']["value"] == 2.0
        assert snap['h{p="a"}']["count"] == 1


class TestHistogramReservoir:
    def test_exact_until_reservoir_fills(self):
        h = Histogram("h", reservoir_size=100)
        for v in range(50):
            h.observe(float(v))
        assert not h.saturated
        assert h.count == 50 and h.sum == sum(range(50))
        assert h.percentile(50.0) == percentile([float(v) for v in range(50)], 50.0)
        assert "reservoir_size" not in h.summary()

    def test_memory_bounded_aggregates_exact(self):
        h = Histogram("h", reservoir_size=64)
        n = 10_000
        for v in range(n):
            h.observe(float(v))
        assert len(h.values) == 64          # bounded
        assert h.saturated
        assert h.count == n                 # exact aggregates survive
        assert h.sum == float(sum(range(n)))
        assert h.mean == pytest.approx((n - 1) / 2)
        assert h.min == 0.0 and h.max == float(n - 1)
        s = h.summary()
        assert s["count"] == n and s["reservoir_size"] == 64
        # the reservoir is an unbiased-ish sample: p50 lands mid-range
        assert 0.0 <= s["p50"] <= n

    def test_reservoir_deterministic_across_instances(self):
        seq = [float((7 * i) % 101) for i in range(5000)]
        a = Histogram("lat", labels={"plan": "jw"}, reservoir_size=32)
        b = Histogram("lat", labels={"plan": "jw"}, reservoir_size=32)
        for v in seq:
            a.observe(v)
            b.observe(v)
        assert a.values == b.values         # identity-seeded RNG

    def test_different_identity_different_reservoir(self):
        seq = [float(i % 97) for i in range(4000)]
        a = Histogram("lat", labels={"plan": "i"}, reservoir_size=16)
        b = Histogram("lat", labels={"plan": "j"}, reservoir_size=16)
        for v in seq:
            a.observe(v)
            b.observe(v)
        assert a.count == b.count == 4000
        assert a.values != b.values

    def test_reservoir_size_validated(self):
        with pytest.raises(ValueError, match="reservoir_size"):
            Histogram("h", reservoir_size=0)


class TestPrometheusExport:
    def test_counter_and_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.counter("serve.jobs_total", labels={"plan": "jw"}).inc(3)
        text = obs.export.prometheus_text(reg)
        assert "# TYPE serve_jobs_total counter" in text
        assert 'serve_jobs_total{plan="jw"} 3' in text

    def test_gauge_min_max_companions(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue.depth")
        for v in (3.0, 7.0, 1.0):
            g.set(v)
        text = obs.export.prometheus_text(reg)
        assert "queue_depth 1" in text
        assert "# TYPE queue_depth_min gauge" in text
        assert "queue_depth_min 1" in text
        assert "queue_depth_max 7" in text

    def test_histogram_as_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("slice.seconds", labels={"plan": "i"})
        for v in (0.25, 0.5, 0.75):
            h.observe(v)
        text = obs.export.prometheus_text(reg)
        assert "# TYPE slice_seconds summary" in text
        assert 'slice_seconds{plan="i",quantile="0.5"} 0.5' in text
        assert 'slice_seconds_sum{plan="i"} 1.5' in text
        assert 'slice_seconds_count{plan="i"} 3' in text
        assert 'slice_seconds_min{plan="i"} 0.25' in text
        assert 'slice_seconds_max{plan="i"} 0.75' in text

    def test_help_line_and_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", description="what it counts", labels={"q": 'a"b'})
        text = obs.export.prometheus_text(reg)
        assert "# HELP c what it counts" in text
        assert 'c{q="a\\"b"} 0' in text

    def test_empty_registry_empty_text(self):
        assert obs.export.prometheus_text(MetricsRegistry()) == ""

    def test_write_prometheus_and_stability(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a", labels={"x": "1"}).inc()
        reg.histogram("b").observe(2.0)
        out = obs.export.write_prometheus(tmp_path / "m.prom", reg)
        text = out.read_text()
        assert text == obs.export.prometheus_text(reg)
        assert text.endswith("\n")

    def test_markdown_summary_includes_gauge_extremes(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5.0)
        g.set(2.0)
        tr = SpanTracer()
        text = obs.export.summary_markdown(tr, reg)
        assert "min=2" in text and "max=5" in text

"""Tests for metrics, analytic predictions, and calibration."""

import numpy as np
import pytest

from repro.core.hostmodel import PENTIUM_E5300
from repro.core.plans import IParallelPlan, JParallelPlan, JwParallelPlan, PlanConfig, WParallelPlan
from repro.gpu.device import RADEON_HD_5850
from repro.nbody.ic import plummer
from repro.perfmodel.analytic import (
    AnalyticInputs,
    predict_i_parallel,
    predict_j_parallel,
    predict_jw_parallel,
    predict_multi_device_scaling,
    predict_w_parallel,
)
from repro.perfmodel.calibration import (
    PAPER_SUSTAINED_GFLOPS,
    calibrate_interaction_cycles,
    expected_cpu_speedup,
    sustained_gflops,
)
from repro.perfmodel.metrics import (
    both_conventions,
    crossover_n,
    gflops_rate,
    parallel_efficiency,
    speedup,
)

DEV = RADEON_HD_5850
EPS = 1e-2


class TestMetrics:
    def test_gflops_rate(self):
        assert gflops_rate(1e9, 1.0) == pytest.approx(20.0)

    def test_both_conventions_ratio(self):
        g20, g38 = both_conventions(1e9, 1.0)
        assert g38 / g20 == pytest.approx(38 / 20)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_parallel_efficiency(self):
        assert parallel_efficiency(1e12, 2e12) == pytest.approx(0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            gflops_rate(1, 0.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0.0)

    def test_crossover_detection(self):
        n = np.array([1e3, 1e4, 1e5])
        a = np.array([1.0, 10.0, 100.0])
        b = np.array([5.0, 8.0, 20.0])  # b overtakes between 1e3 and 1e4
        x = crossover_n(n, a, b)
        assert 1e3 < x < 1e4

    def test_crossover_none(self):
        n = np.array([1e3, 1e4])
        assert crossover_n(n, np.array([1.0, 2.0]), np.array([3.0, 4.0])) is None

    def test_crossover_immediate(self):
        n = np.array([1e3, 1e4])
        assert crossover_n(n, np.array([3.0, 4.0]), np.array([1.0, 2.0])) == 1e3


class TestCalibration:
    def test_shipped_device_matches_paper_sustained(self):
        assert sustained_gflops(DEV) == pytest.approx(PAPER_SUSTAINED_GFLOPS, rel=0.1)

    def test_calibrate_roundtrip(self):
        d = calibrate_interaction_cycles(DEV, 250.0)
        assert sustained_gflops(d) == pytest.approx(250.0, rel=1e-9)

    def test_calibrate_rejects_bad_target(self):
        with pytest.raises(ValueError):
            calibrate_interaction_cycles(DEV, 0.0)

    def test_expected_cpu_speedup_near_paper(self):
        s = expected_cpu_speedup(DEV, PENTIUM_E5300)
        assert 300 < s < 900  # "about 400x" at rate level


class TestAnalytic:
    def test_i_parallel_tracks_simulator(self):
        for n in (1024, 16384):
            p = plummer(n, seed=41)
            sim = IParallelPlan(PlanConfig(softening=EPS)).step_breakdown(
                p.positions, p.masses
            )
            pred = predict_i_parallel(DEV, AnalyticInputs(n_bodies=n))
            assert pred == pytest.approx(sim.kernel_seconds, rel=0.6)

    def test_j_parallel_tracks_simulator(self):
        n = 4096
        p = plummer(n, seed=42)
        sim = JParallelPlan(PlanConfig(softening=EPS)).step_breakdown(
            p.positions, p.masses
        )
        pred = predict_j_parallel(DEV, AnalyticInputs(n_bodies=n))
        assert pred == pytest.approx(sim.kernel_seconds, rel=0.6)

    def test_tree_predictions_track_simulator(self):
        n = 8192
        p = plummer(n, seed=43)
        cfg = PlanConfig(softening=EPS)
        bw = WParallelPlan(cfg).step_breakdown(p.positions, p.masses)
        inp = AnalyticInputs(
            n_bodies=n,
            n_walks=int(bw.meta["n_walks"]),
            mean_group_size=bw.meta["mean_group_size"],
            mean_list_length=bw.meta["mean_list_length"],
            lane_utilization=bw.meta["lane_utilization"],
        )
        pred_w = predict_w_parallel(DEV, inp)
        assert pred_w == pytest.approx(bw.kernel_seconds, rel=0.6)

        bjw = JwParallelPlan(cfg).step_breakdown(p.positions, p.masses)
        pred_jw = predict_jw_parallel(DEV, inp)
        assert pred_jw == pytest.approx(bjw.kernel_seconds, rel=0.6)

    def test_jw_prediction_below_w(self):
        inp = AnalyticInputs(
            n_bodies=8192, n_walks=200, mean_group_size=40.0,
            mean_list_length=1500.0, lane_utilization=0.6,
        )
        assert predict_jw_parallel(DEV, inp) < predict_w_parallel(DEV, inp)

    def test_tree_prediction_requires_stats(self):
        with pytest.raises(ValueError):
            predict_w_parallel(DEV, AnalyticInputs(n_bodies=100))

    def test_multi_device_scaling_saturates(self):
        inp = AnalyticInputs(
            n_bodies=65536, n_walks=1000, mean_group_size=64.0,
            mean_list_length=2700.0, lane_utilization=0.7,
        )
        t1 = predict_multi_device_scaling(DEV, PENTIUM_E5300, inp, 1)
        t4 = predict_multi_device_scaling(DEV, PENTIUM_E5300, inp, 4)
        t64 = predict_multi_device_scaling(DEV, PENTIUM_E5300, inp, 64)
        assert t4 <= t1
        # eventually host-bound: more devices stop helping
        assert t64 == pytest.approx(
            PENTIUM_E5300.tree_build_seconds(65536)
            + PENTIUM_E5300.walk_generation_seconds(1000, int(1000 * 2700.0))
        )

    def test_multi_device_rejects_zero(self):
        inp = AnalyticInputs(n_bodies=10, n_walks=1, mean_group_size=1, mean_list_length=1)
        with pytest.raises(ValueError):
            predict_multi_device_scaling(DEV, PENTIUM_E5300, inp, 0)

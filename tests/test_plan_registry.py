"""Tests for the plan registry and the keyword-only constructor shims.

The contracts under test:

1. the four PTPM plans self-register by name; ``get_plan`` splits
   PlanConfig-field keywords from constructor keywords; ``resolve_plan``
   accepts names and instances uniformly;
2. ``register`` guards duplicate names and non-Plan classes, and a
   registered custom plan is addressable everywhere names are accepted
   (Simulation, JobSpec, resume);
3. ``Simulation`` / ``RunSession`` accept their formerly positional
   tail arguments for one release with a ``DeprecationWarning``.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.core.plans import (
    IParallelPlan,
    JwParallelPlan,
    Plan,
    PlanConfig,
    WParallelPlan,
    available_plans,
    get_plan,
    plan_by_name,
    resolve_plan,
)
from repro.core.plans.registry import register, unregister
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.nbody.ic import plummer
from repro.runtime import RunSession


class TestRegistry:
    def test_builtin_plans_registered(self):
        assert available_plans() == ("block-i", "block-jw", "i", "j", "jw", "w")

    def test_get_plan_by_name(self):
        assert isinstance(get_plan("jw"), JwParallelPlan)
        assert isinstance(get_plan("i"), IParallelPlan)

    def test_get_plan_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown plan"):
            get_plan("nope")

    def test_get_plan_splits_config_kwargs(self):
        plan = get_plan("w", softening=0.05, wg_size=128)
        assert plan.config.softening == 0.05
        assert plan.config.wg_size == 128

    def test_get_plan_forwards_constructor_kwargs(self):
        plan = get_plan("jw", softening=0.05, pipeline_batches=3)
        assert plan.config.softening == 0.05
        assert plan.pipeline_batches == 3

    def test_get_plan_config_object_exclusive_with_field_kwargs(self):
        with pytest.raises(ConfigurationError):
            get_plan("w", PlanConfig(), softening=0.05)

    def test_get_plan_rejects_instance(self):
        with pytest.raises(ConfigurationError, match="resolve_plan"):
            get_plan(WParallelPlan())

    def test_resolve_plan_name_and_instance(self):
        inst = WParallelPlan()
        assert resolve_plan(inst) is inst
        assert isinstance(resolve_plan("w"), WParallelPlan)
        with pytest.raises(ConfigurationError):
            resolve_plan(inst, PlanConfig())
        with pytest.raises(ConfigurationError):
            resolve_plan(42)

    def test_plan_by_name_alias(self, config):
        plan = plan_by_name("jw", config)
        assert isinstance(plan, JwParallelPlan)
        assert plan.config.softening == config.softening

    def test_register_rejects_duplicates_and_non_plans(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register("jw")
            class Rogue(WParallelPlan):
                pass

        with pytest.raises(ConfigurationError, match="Plan subclass"):

            @register("thing")
            class NotAPlan:
                pass

    def test_custom_plan_registers_and_unregisters(self):
        @register("custom-w")
        class CustomW(WParallelPlan):
            pass

        try:
            assert "custom-w" in available_plans()
            assert isinstance(get_plan("custom-w"), CustomW)
            # addressable through Simulation's name resolution too
            sim = Simulation(plummer(64, seed=1), "custom-w", dt=1e-3)
            assert isinstance(sim.plan, CustomW)
        finally:
            unregister("custom-w")
        assert "custom-w" not in available_plans()
        unregister("custom-w")  # idempotent


class TestNameResolutionEverywhere:
    def test_simulation_accepts_name_and_instance(self, plummer_small, config):
        by_name = Simulation(plummer_small, "jw", dt=1e-3, plan_config=config)
        by_inst = Simulation(plummer_small, JwParallelPlan(config), dt=1e-3)
        assert type(by_name.plan) is type(by_inst.plan)
        assert by_name.plan.config.softening == config.softening

    def test_facade_exports(self):
        assert repro.get_plan is get_plan
        assert repro.available_plans is available_plans
        from repro import plans as plans_module

        assert plans_module.get_plan is get_plan
        assert plans_module.Plan is Plan

    def test_resume_accepts_plan_name(self, tmp_path, plummer_small):
        sim = Simulation(plummer_small.copy(), "jw", dt=1e-3)
        RunSession(sim, tmp_path, checkpoint_every=2).run(4)
        # resume the jw run under the w plan, by name
        session = RunSession.resume(tmp_path, plan="w")
        assert isinstance(session.simulation.plan, WParallelPlan)
        # manifest's plan config rode along
        assert (
            session.simulation.plan.config.softening
            == sim.plan.config.softening
        )
        with pytest.raises(ConfigurationError, match="unknown plan"):
            RunSession.resume(tmp_path, plan="nope")


class TestDeprecatedPositionalShims:
    def test_simulation_positional_dt_warns_but_works(self, plummer_small):
        with pytest.warns(DeprecationWarning, match="dt"):
            sim = Simulation(plummer_small, JwParallelPlan(), 2e-3)
        assert sim.dt == 2e-3

    def test_simulation_keyword_dt_is_clean(self, plummer_small):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Simulation(plummer_small, JwParallelPlan(), dt=2e-3)

    def test_simulation_rejects_extra_positionals(self, plummer_small):
        with pytest.raises(TypeError, match="positional"):
            Simulation(plummer_small, JwParallelPlan(), 1e-3, None)

    def test_run_session_positional_checkpoint_every_warns(
        self, tmp_path, plummer_small
    ):
        sim = Simulation(plummer_small, "i", dt=1e-3)
        with pytest.warns(DeprecationWarning, match="checkpoint_every"):
            session = RunSession(sim, tmp_path, 5)
        assert session.checkpoint_every == 5

    def test_run_session_keyword_is_clean(self, tmp_path, plummer_small):
        sim = Simulation(plummer_small, "i", dt=1e-3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            RunSession(sim, tmp_path, checkpoint_every=5)

    def test_run_session_rejects_extra_positionals(
        self, tmp_path, plummer_small
    ):
        sim = Simulation(plummer_small, "i", dt=1e-3)
        with pytest.raises(TypeError, match="positional"):
            RunSession(sim, tmp_path, 5, None)


class TestStartAdvanceSplit:
    """run() == start() + unbounded advance(); slicing is bit-exact."""

    def test_sliced_advance_equals_run(self, plummer_small):
        base = plummer_small.copy()
        sim_a = Simulation(base.copy(), "jw", dt=1e-3)
        sim_b = Simulation(base.copy(), "jw", dt=1e-3)
        import tempfile

        with tempfile.TemporaryDirectory() as da, \
                tempfile.TemporaryDirectory() as db:
            RunSession(sim_a, da).run(7)
            session = RunSession(sim_b, db)
            target = session.start(7)
            assert target == 7
            ticks = 0
            while not session.advance(2):
                ticks += 1
                assert ticks < 100
            assert session.complete
        np.testing.assert_array_equal(
            sim_a.particles.positions, sim_b.particles.positions
        )
        np.testing.assert_array_equal(
            sim_a.particles.velocities, sim_b.particles.velocities
        )
        assert sim_a.record.force_passes == sim_b.record.force_passes

    def test_advance_requires_start(self, tmp_path, plummer_small):
        from repro.errors import StateError

        sim = Simulation(plummer_small, "i", dt=1e-3)
        session = RunSession(sim, tmp_path)
        with pytest.raises(StateError, match="start"):
            session.advance(1)

    def test_advance_validation(self, tmp_path, plummer_small):
        sim = Simulation(plummer_small.copy(), "i", dt=1e-3)
        session = RunSession(sim, tmp_path)
        session.start(3)
        with pytest.raises(ConfigurationError, match="max_steps"):
            session.advance(0)
        assert session.advance(None) is True
        assert session.advance(1) is True  # idempotent once complete

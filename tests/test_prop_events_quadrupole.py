"""Property-based tests for the event graph and quadrupole moments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpu.events import EventGraph
from repro.tree.octree import build_octree
from repro.tree.quadrupole import quadrupole_moments

durations = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=30
)


class TestEventGraphProperties:
    @given(durations, durations, durations)
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, a, b, c):
        k = min(len(a), len(b), len(c))
        g = EventGraph.pipelined_step(a[:k], b[:k], c[:k])
        ms = g.makespan()
        busy = g.resource_busy()
        # at least the busiest resource, at most the serial sum
        assert ms >= max(busy.values()) - 1e-9
        assert ms <= sum(busy.values()) + 1e-9

    @given(durations, durations, durations, st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_more_devices_never_slower(self, a, b, c, d):
        k = min(len(a), len(b), len(c))
        one = EventGraph.pipelined_step(a[:k], b[:k], c[:k], n_devices=1).makespan()
        many = EventGraph.pipelined_step(a[:k], b[:k], c[:k], n_devices=d).makespan()
        assert many <= one + 1e-9

    @given(durations)
    @settings(max_examples=50, deadline=None)
    def test_single_resource_is_serial(self, xs):
        g = EventGraph()
        for x in xs:
            g.submit("gpu", x)
        assert g.makespan() == pytest.approx(sum(xs))

    @given(durations, st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_adding_work_never_reduces_makespan(self, xs, extra):
        g1 = EventGraph()
        for x in xs:
            g1.submit("gpu", x)
        ms1 = g1.makespan()
        g1.submit("gpu", extra)
        assert g1.makespan() >= ms1 - 1e-12


coords = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


class TestQuadrupoleProperties:
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(2, 40), st.just(3)),
                   elements=coords),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_traceless_and_symmetric_always(self, pos, seed):
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 2.0, pos.shape[0])
        tree = build_octree(pos, m, leaf_size=4)
        q = quadrupole_moments(tree)
        scale = np.abs(q).max() + 1.0
        np.testing.assert_allclose(np.einsum("nii->n", q), 0.0, atol=1e-9 * scale)
        np.testing.assert_allclose(q, np.transpose(q, (0, 2, 1)), atol=1e-9 * scale)

    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(2, 30), st.just(3)),
                   elements=coords),
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_translation_invariance(self, pos, shift):
        """Q is computed about the COM, so translating everything leaves it
        unchanged (same tree geometry enforced via an explicit cube)."""
        m = np.ones(pos.shape[0])
        center = pos.mean(axis=0)
        half = float(np.abs(pos - center).max()) + 1.0
        t1 = build_octree(pos, m, leaf_size=4, center=center, half_width=half)
        t2 = build_octree(pos + shift, m, leaf_size=4, center=center + shift,
                          half_width=half)
        q1 = quadrupole_moments(t1)
        q2 = quadrupole_moments(t2)
        scale = np.abs(q1).max() + 1.0
        np.testing.assert_allclose(q1, q2, atol=1e-7 * scale)

"""Property-based tests for force evaluation and walk generation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nbody.forces import accelerations_from_sources, direct_forces
from repro.tree.bh_force import accelerations_from_walks
from repro.tree.octree import build_octree
from repro.tree.walks import generate_walks

coords = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def bodies_strategy(min_n=2, max_n=40):
    return st.tuples(
        hnp.arrays(np.float64, st.tuples(st.integers(min_n, max_n), st.just(3)),
                   elements=coords),
        st.integers(0, 2**31 - 1),
    )


class TestForceProperties:
    @given(bodies_strategy())
    @settings(max_examples=30, deadline=None)
    def test_momentum_conservation(self, data):
        pos, seed = data
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 3.0, pos.shape[0])
        acc = direct_forces(pos, m, softening=0.05)
        total = m @ acc
        scale = np.abs(m[:, None] * acc).sum() + 1e-30
        assert np.linalg.norm(total) / scale < 1e-10

    @given(bodies_strategy())
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, data):
        pos, seed = data
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 3.0, pos.shape[0])
        a1 = direct_forces(pos, m, softening=0.05)
        a2 = direct_forces(pos + np.array([5.0, -3.0, 2.0]), m, softening=0.05)
        # translating coordinates costs a few ulps of the *position*, which
        # near-coincident bodies amplify; tolerate cancellation at the
        # scale of the softened force bound m/eps^2
        scale = float(np.abs(m).sum()) / 0.05**2
        np.testing.assert_allclose(a1, a2, rtol=1e-9, atol=1e-12 * scale)

    @given(bodies_strategy(), st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_law(self, data, scale):
        """a(s*x) = a(x) / s^2 for unsoftened gravity (mass fixed)."""
        pos, seed = data
        rng = np.random.default_rng(seed)
        # keep bodies separated so zero softening is safe
        pos = pos + rng.uniform(0.05, 0.1, pos.shape)  # jitter duplicates
        m = rng.uniform(0.1, 3.0, pos.shape[0])
        pairwise = pos[:, None, :] - pos[None, :, :]
        d2 = (pairwise**2).sum(-1) + np.eye(pos.shape[0])
        if d2.min() < 1e-4:
            return  # reject degenerate draw
        a1 = direct_forces(pos, m, softening=0.0, include_self=False)
        a2 = direct_forces(scale * pos, m, softening=0.0, include_self=False)
        np.testing.assert_allclose(a2, a1 / scale**2, rtol=1e-7, atol=1e-10)

    @given(bodies_strategy())
    @settings(max_examples=20, deadline=None)
    def test_superposition_over_source_split(self, data):
        pos, seed = data
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 3.0, pos.shape[0])
        targets = pos[:3]
        k = pos.shape[0] // 2
        full = accelerations_from_sources(targets, pos, m, softening=0.05)
        part = accelerations_from_sources(
            targets, pos[:k], m[:k], softening=0.05
        ) + accelerations_from_sources(targets, pos[k:], m[k:], softening=0.05)
        np.testing.assert_allclose(full, part, rtol=1e-9, atol=1e-12)


class TestWalkProperties:
    @given(
        bodies_strategy(min_n=4, max_n=60),
        st.floats(min_value=0.3, max_value=1.2),
        st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=25, deadline=None)
    def test_walks_cover_each_body_exactly_once(self, data, theta, group_size):
        pos, seed = data
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 3.0, pos.shape[0])
        tree = build_octree(pos, m, leaf_size=4)
        ws = generate_walks(tree, theta=theta, group_size=group_size)
        covered = np.zeros(tree.n_bodies, dtype=int)
        for w in ws:
            covered[w.start : w.end] += 1
        assert np.all(covered == 1)

    @given(
        bodies_strategy(min_n=4, max_n=60),
        st.floats(min_value=0.3, max_value=1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_each_walk_list_tiles_all_mass(self, data, theta):
        """Every walk's sources (cells + particles) sum to the total mass."""
        pos, seed = data
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 3.0, pos.shape[0])
        tree = build_octree(pos, m, leaf_size=4)
        ws = generate_walks(tree, theta=theta, group_size=8)
        total = m.sum()
        for w in ws:
            cell_mass = tree.node_masses[w.cell_list].sum()
            part_mass = tree.masses[w.particle_list].sum()
            assert np.isclose(cell_mass + part_mass, total, rtol=1e-9)

    @given(bodies_strategy(min_n=4, max_n=50))
    @settings(max_examples=15, deadline=None)
    def test_walk_forces_bounded_error_vs_direct(self, data):
        pos, seed = data
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 3.0, pos.shape[0])
        tree = build_octree(pos, m, leaf_size=4)
        ws = generate_walks(tree, theta=0.5, group_size=8)
        acc = accelerations_from_walks(ws, softening=0.05)
        ref = direct_forces(pos, m, softening=0.05, include_self=False)
        num = np.linalg.norm(acc - ref, axis=1)
        den = np.linalg.norm(ref, axis=1)
        mask = den > 1e-9  # near-zero net force bodies carry no signal
        if mask.any():
            assert (num[mask] / den[mask]).max() < 0.2

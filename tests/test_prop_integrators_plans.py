"""Property-based tests for integrators and plan-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plans import IParallelPlan, JParallelPlan, JwParallelPlan, PlanConfig, WParallelPlan
from repro.nbody.energy import total_energy
from repro.nbody.forces import direct_forces
from repro.nbody.ic import plummer
from repro.nbody.integrators import LeapfrogKDK, integrate

EPS = 5e-2


class TestIntegratorProperties:
    @given(
        st.integers(min_value=8, max_value=64),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=1e-4, max_value=5e-3),
    )
    @settings(max_examples=15, deadline=None)
    def test_leapfrog_energy_bounded(self, n, seed, dt):
        p = plummer(n, seed=seed)
        e0 = total_energy(p, softening=EPS)

        def accel(x):
            return direct_forces(x, p.masses, softening=EPS, include_self=False)

        integrate(p, accel, dt=dt, n_steps=20, integrator=LeapfrogKDK())
        e1 = total_energy(p, softening=EPS)
        assert abs(e1 - e0) / abs(e0) < 0.05

    @given(
        st.integers(min_value=8, max_value=48),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=10, deadline=None)
    def test_leapfrog_reversibility(self, n, seed):
        p = plummer(n, seed=seed)
        start = p.positions.copy()

        def accel(x):
            return direct_forces(x, p.masses, softening=EPS, include_self=False)

        integrate(p, accel, dt=1e-3, n_steps=15, integrator=LeapfrogKDK())
        p.velocities *= -1.0
        integrate(p, accel, dt=1e-3, n_steps=15, integrator=LeapfrogKDK())
        np.testing.assert_allclose(p.positions, start, atol=1e-8)


class TestPlanProperties:
    @given(
        st.integers(min_value=64, max_value=512),
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from([IParallelPlan, JParallelPlan, WParallelPlan, JwParallelPlan]),
    )
    @settings(max_examples=12, deadline=None)
    def test_plan_forces_track_direct(self, n, seed, plan_cls):
        p = plummer(n, seed=seed)
        cfg = PlanConfig(softening=EPS)
        acc = plan_cls(cfg).accelerations(p.positions, p.masses)
        ref = direct_forces(p.positions, p.masses, softening=EPS, include_self=False)
        num = np.linalg.norm(acc - ref, axis=1)
        den = np.linalg.norm(ref, axis=1)
        mask = den > 1e-9
        tol = 1e-3 if plan_cls.method == "pp" else 0.1
        assert (num[mask] / den[mask]).max() < tol

    @given(
        st.integers(min_value=64, max_value=512),
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from([IParallelPlan, JParallelPlan, WParallelPlan, JwParallelPlan]),
    )
    @settings(max_examples=12, deadline=None)
    def test_breakdown_invariants(self, n, seed, plan_cls):
        p = plummer(n, seed=seed)
        b = plan_cls(PlanConfig(softening=EPS)).step_breakdown(p.positions, p.masses)
        assert b.total_seconds > 0
        assert b.kernel_seconds > 0
        assert b.issued_interactions >= b.interactions > 0
        assert b.total_seconds >= b.kernel_seconds * (0.999 if b.overlapped else 1.0)
        # time must be at least the work divided by the device's best rate
        dev = PlanConfig().device
        assert b.kernel_seconds >= b.issued_interactions / dev.sustained_interaction_rate * 0.99

"""Property-based tests for Morton keys and the octree (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tree import morton
from repro.tree.octree import build_octree

# bounded, well-conditioned coordinates
coords = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def positions_strategy(min_n=1, max_n=60):
    return hnp.arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(3)),
        elements=coords,
    )


class TestMortonProperties:
    @given(positions_strategy())
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_roundtrip(self, pos):
        center = pos.mean(axis=0)
        half = float(np.abs(pos - center).max()) + 1.0
        keys = morton.encode(pos, center, half)
        cells = morton.decode(keys)
        np.testing.assert_array_equal(
            cells, morton.grid_coordinates(pos, center, half)
        )

    @given(positions_strategy(min_n=2))
    @settings(max_examples=40, deadline=None)
    def test_keys_preserve_octant_order(self, pos):
        """Sorting by key groups bodies by top-level octant contiguously."""
        center = pos.mean(axis=0)
        half = float(np.abs(pos - center).max()) + 1.0
        keys = np.sort(morton.encode(pos, center, half))
        digits = morton.key_octant(keys, 0)
        assert np.all(np.diff(digits) >= 0)

    @given(
        hnp.arrays(np.float64, (20, 3), elements=coords),
        st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance_to_one_cell(self, pos, shift):
        """Keys depend only on position relative to the cube — up to the
        one-cell boundary flips floating-point translation can cause
        (``(a+s)-(c+s) != a-c`` in floats for bodies exactly on a cell
        edge)."""
        center = pos.mean(axis=0)
        half = float(np.abs(pos - center).max()) + 1.0
        c1 = morton.decode(morton.encode(pos, center, half)).astype(np.int64)
        c2 = morton.decode(
            morton.encode(pos + shift, center + shift, half)
        ).astype(np.int64)
        assert np.abs(c1 - c2).max() <= 1


class TestOctreeProperties:
    @given(
        positions_strategy(min_n=1, max_n=80),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold_for_any_input(self, pos, leaf_size, mass_seed):
        rng = np.random.default_rng(mass_seed)
        masses = rng.uniform(0.1, 2.0, pos.shape[0])
        tree = build_octree(pos, masses, leaf_size=leaf_size)
        tree.validate()

    @given(positions_strategy(min_n=2, max_n=80))
    @settings(max_examples=30, deadline=None)
    def test_unsort_is_inverse_permutation(self, pos):
        masses = np.ones(pos.shape[0])
        tree = build_octree(pos, masses, leaf_size=4)
        np.testing.assert_allclose(tree.unsort(tree.positions), pos)

    @given(positions_strategy(min_n=2, max_n=60))
    @settings(max_examples=30, deadline=None)
    def test_monopole_conservation_at_every_node(self, pos):
        """Mass x COM summed over any node's children equals the node's."""
        masses = np.ones(pos.shape[0])
        tree = build_octree(pos, masses, leaf_size=4)
        for i in range(tree.n_nodes):
            kids = tree.children[i][tree.children[i] >= 0]
            if kids.size:
                m_kids = tree.node_masses[kids]
                com_kids = (m_kids[:, None] * tree.coms[kids]).sum(axis=0) / m_kids.sum()
                np.testing.assert_allclose(com_kids, tree.coms[i], atol=1e-9)

"""Property-based tests for schedulers, pipelines, and timing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import overlapped_pipeline, overlapped_pipeline3
from repro.core.scheduler import schedule_walks
from repro.gpu.timing import greedy_schedule, round_robin_schedule

cost_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=200
)
workers = st.integers(min_value=1, max_value=32)


class TestSchedulerProperties:
    @given(cost_lists, workers)
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, costs, n):
        costs = np.asarray(costs)
        ms, busy = greedy_schedule(costs, n)
        assert ms >= costs.max() - 1e-9
        assert ms >= costs.sum() / n - 1e-9
        assert ms <= costs.sum() + 1e-9
        np.testing.assert_allclose(busy.sum(), costs.sum())

    @given(cost_lists, workers)
    @settings(max_examples=60, deadline=None)
    def test_greedy_satisfies_graham_bound(self, costs, n):
        """Graham's theorem: list scheduling <= (2 - 1/m) x OPT, with
        OPT >= max(sum/m, max).  (Greedy FIFO is *not* always better than
        round-robin — hypothesis found the counter-example [1,0,1,2] on 2
        workers — so the guarantee we rely on is the Graham bound.)"""
        costs = np.asarray(costs)
        ms_g, _ = greedy_schedule(costs, n)
        opt_lb = max(costs.sum() / n, costs.max())
        assert ms_g <= (2.0 - 1.0 / n) * opt_lb + 1e-9

    @given(cost_lists, workers)
    @settings(max_examples=60, deadline=None)
    def test_lpt_satisfies_its_graham_bound(self, costs, n):
        """LPT's guarantee is (4/3 - 1/(3m)) x OPT — it is *not* pointwise
        better than FIFO greedy (hypothesis found [2,3,2,4,3] on 2 workers
        where FIFO gets 7 and LPT gets 8), so the worst-case bound is the
        property to pin."""
        costs = np.asarray(costs)
        lpt = schedule_walks(costs, n, "dynamic-lpt")
        # Graham's direct inequality, valid for any list order:
        # makespan <= sum/m + (1 - 1/m) * cmax
        bound = costs.sum() / n + (1.0 - 1.0 / n) * costs.max()
        assert lpt.makespan <= bound + 1e-9

    @given(cost_lists, workers)
    @settings(max_examples=60, deadline=None)
    def test_single_worker_is_serial(self, costs, _n):
        costs = np.asarray(costs)
        ms, _ = greedy_schedule(costs, 1)
        np.testing.assert_allclose(ms, costs.sum())

    @given(cost_lists)
    @settings(max_examples=40, deadline=None)
    def test_more_workers_never_hurt(self, costs):
        costs = np.asarray(costs)
        ms = [greedy_schedule(costs, n)[0] for n in (1, 2, 4, 8, 16)]
        assert all(a >= b - 1e-9 for a, b in zip(ms, ms[1:]))


batch_lists = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=50
)


class TestPipelineProperties:
    @given(batch_lists, batch_lists)
    @settings(max_examples=60, deadline=None)
    def test_two_stage_bounds(self, h, d):
        k = min(len(h), len(d))
        h, d = h[:k], d[:k]
        r = overlapped_pipeline(h, d)
        assert r.total_seconds >= max(sum(h), sum(d)) - 1e-9
        assert r.total_seconds <= sum(h) + sum(d) + 1e-9

    @given(batch_lists, batch_lists, batch_lists)
    @settings(max_examples=60, deadline=None)
    def test_three_stage_bounds(self, a, b, c):
        k = min(len(a), len(b), len(c))
        a, b, c = a[:k], b[:k], c[:k]
        r = overlapped_pipeline3(a, b, c)
        assert r.total_seconds >= max(sum(a), sum(b), sum(c)) - 1e-9
        assert r.total_seconds <= sum(a) + sum(b) + sum(c) + 1e-9

    @given(batch_lists, batch_lists)
    @settings(max_examples=40, deadline=None)
    def test_three_stage_with_zero_middle_equals_two_stage(self, h, d):
        k = min(len(h), len(d))
        h, d = h[:k], d[:k]
        r2 = overlapped_pipeline(h, d)
        r3 = overlapped_pipeline3(h, [0.0] * k, d)
        np.testing.assert_allclose(r3.total_seconds, r2.total_seconds)

    @given(batch_lists, batch_lists)
    @settings(max_examples=40, deadline=None)
    def test_overlap_never_worse_than_serial(self, h, d):
        k = min(len(h), len(d))
        h, d = h[:k], d[:k]
        r = overlapped_pipeline(h, d)
        assert r.total_seconds <= sum(h) + sum(d) + 1e-9
        assert r.hidden_seconds >= -1e-9

"""Tests for repro.runtime and the repro.exec fault-tolerance layer.

The contracts under test:

1. a run interrupted between checkpoints resumes via ``RunSession.resume``
   and finishes **bit-identical** to an uninterrupted run (positions,
   velocities, time, record totals) — including when resumed onto a
   different execution backend;
2. per-task retry, dispatch deadline, and backend fallback in
   ``ExecutionEngine`` each recover deterministically under an injected
   fault, observably (spans + counters);
3. the checkpoint format is crash-safe: unlisted checkpoint directories
   are ignored, manifests are atomically replaced.
"""

import json
import warnings

import pytest

from repro import obs
from repro.check import assert_bit_identical
from repro.core.plans import PlanConfig, plan_by_name
from repro.core.simulation import SimulationRecord
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ExecutionError,
)
from repro.exec import (
    ExecutionEngine,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
)
from repro.runtime import RunManifest, RunSession
from repro.runtime.checkpoint import plan_config_from_dict, plan_config_to_dict
from tests.conftest import EPS, Interrupt, interrupt_at, make_sim


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------

class TestRunSession:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path):
        ref = make_sim()
        ref.run(12)

        session = RunSession(make_sim(), tmp_path / "run", checkpoint_every=4)
        with pytest.raises(Interrupt):
            session.run(12, callback=interrupt_at(6))
        assert [c.step for c in session.manifest.checkpoints] == [4]

        resumed = RunSession.resume(tmp_path / "run")
        assert resumed.simulation.record.steps == 4
        record = resumed.run()

        assert record.steps == ref.record.steps
        assert record.force_passes == ref.record.force_passes
        assert record.simulated_seconds == ref.record.simulated_seconds
        assert record.interactions == ref.record.interactions
        assert resumed.simulation.time == ref.time
        assert_bit_identical(
            ref.particles.positions,
            resumed.simulation.particles.positions,
            context="resumed positions",
        )
        assert_bit_identical(
            ref.particles.velocities,
            resumed.simulation.particles.velocities,
            context="resumed velocities",
        )
        assert resumed.complete

    @pytest.mark.parametrize(
        "backend",
        ["thread", pytest.param("process", marks=pytest.mark.process_backend)],
    )
    def test_resume_onto_parallel_backend_stays_bit_identical(
        self, tmp_path, backend
    ):
        ref = make_sim()
        ref.run(8)

        session = RunSession(make_sim(), tmp_path / "run", checkpoint_every=3)
        with pytest.raises(Interrupt):
            session.run(8, callback=interrupt_at(5))

        with ExecutionEngine(backend=backend, workers=2) as engine:
            resumed = RunSession.resume(tmp_path / "run", engine=engine)
            resumed.run()
        assert_bit_identical(
            ref.particles.positions,
            resumed.simulation.particles.positions,
            context=f"resume onto {backend}: positions",
        )
        assert_bit_identical(
            ref.particles.velocities,
            resumed.simulation.particles.velocities,
            context=f"resume onto {backend}: velocities",
        )

    def test_uninterrupted_session_matches_plain_run(self, tmp_path):
        ref = make_sim()
        ref.run(6)
        session = RunSession(make_sim(), tmp_path / "run", checkpoint_every=2)
        session.run(6)
        assert_bit_identical(
            ref.particles.positions,
            session.simulation.particles.positions,
            context="uninterrupted session positions",
        )
        assert session.complete
        # intermediate checkpoints at 2 and 4, final at 6
        assert [c.step for c in session.manifest.checkpoints] == [2, 4, 6]

    def test_resume_without_acc_cache_still_bit_identical(self, tmp_path):
        """Dropping last_acc costs one bootstrap pass, never physics."""
        ref = make_sim()
        ref.run(10)
        session = RunSession(make_sim(), tmp_path / "run", checkpoint_every=5)
        with pytest.raises(Interrupt):
            session.run(10, callback=interrupt_at(7))
        (tmp_path / "run" / "ckpt_00000005" / "last_acc.npy").unlink()
        resumed = RunSession.resume(tmp_path / "run")
        assert resumed.simulation.last_acceleration is None
        record = resumed.run()
        assert_bit_identical(
            ref.particles.positions,
            resumed.simulation.particles.positions,
            context="resume without acc cache",
        )
        # the extra bootstrap pass is the only accounting difference
        assert record.force_passes == ref.record.force_passes + 1

    def test_unlisted_checkpoint_dir_is_ignored(self, tmp_path):
        session = RunSession(make_sim(), tmp_path / "run", checkpoint_every=2)
        with pytest.raises(Interrupt):
            session.run(8, callback=interrupt_at(5))
        # emulate a crash mid-checkpoint: a partial dir not in the manifest
        partial = tmp_path / "run" / "ckpt_00000099"
        partial.mkdir()
        (partial / "garbage").write_text("not a checkpoint")
        resumed = RunSession.resume(tmp_path / "run")
        assert resumed.simulation.record.steps == 4

    def test_fresh_session_refuses_existing_manifest(self, tmp_path):
        session = RunSession(make_sim(), tmp_path / "run", checkpoint_every=2)
        session.run(2)
        with pytest.raises(CheckpointError):
            RunSession(make_sim(), tmp_path / "run")

    def test_resume_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError):
            RunSession.resume(tmp_path / "nope")

    def test_resume_with_no_checkpoints(self, tmp_path):
        RunManifest(
            plan="j", plan_config=plan_config_to_dict(PlanConfig()),
            dt=1e-3, target_steps=10, checkpoint_every=0,
        ).write(tmp_path / "run")
        with pytest.raises(CheckpointError):
            RunSession.resume(tmp_path / "run")

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunSession(make_sim(), tmp_path / "a", checkpoint_every=-1)
        session = RunSession(make_sim(), tmp_path / "b")
        with pytest.raises(ConfigurationError):
            session.run()  # fresh session needs a target
        with pytest.raises(ConfigurationError):
            session.run(0)
        session.run(2)
        with pytest.raises(ConfigurationError):
            session.run(1)  # target behind current step

    def test_checkpoint_spans_and_counter(self, tmp_path):
        obs.enable(reset=True)
        try:
            session = RunSession(make_sim(), tmp_path / "run", checkpoint_every=2)
            session.run(4)
            names = [s.name for s in obs.tracer().spans]
            assert "runtime.run" in names
            assert names.count("runtime.checkpoint") == 2  # step 2 + final
            snap = obs.metrics().snapshot()
            assert snap["checkpoints_total"]["value"] == 2
        finally:
            obs.disable()

    def test_plan_config_round_trip(self):
        cfg = PlanConfig(softening=EPS, wg_size=128, theta=0.4, leaf_size=16)
        restored = plan_config_from_dict(plan_config_to_dict(cfg))
        assert restored == cfg

    def test_manifest_rejects_unknown_device(self, tmp_path):
        data = plan_config_to_dict(PlanConfig())
        data["device"] = "NVIDIA H100"
        with pytest.raises(CheckpointError):
            plan_config_from_dict(data)

    def test_record_round_trip_is_exact(self):
        sim = make_sim()
        sim.run(3)
        restored = SimulationRecord.from_dict(
            json.loads(json.dumps(sim.record.to_dict()))
        )
        assert restored.steps == sim.record.steps
        assert restored.force_passes == sim.record.force_passes
        assert restored.simulated_seconds == sim.record.simulated_seconds
        assert restored.kernel_seconds == sim.record.kernel_seconds


# ---------------------------------------------------------------------------
# Engine fault tolerance
# ---------------------------------------------------------------------------

def _square(x):
    return x * x


class TestRetry:
    def test_serial_retry_recovers(self):
        eng = ExecutionEngine(
            retry=RetryPolicy(max_retries=2),
            fault_injector=FaultInjector(fail_tasks=[3]),
        )
        assert eng.map(_square, range(6)) == [i * i for i in range(6)]
        assert eng.retries_total == 1

    def test_without_retry_fault_propagates(self):
        eng = ExecutionEngine(fault_injector=FaultInjector(fail_tasks=[2]))
        with pytest.raises(InjectedFault):
            eng.map(_square, range(6))

    def test_retries_exhausted_raises(self):
        eng = ExecutionEngine(
            retry=RetryPolicy(max_retries=1),
            fault_injector=FaultInjector(fail_tasks=[2], fail_attempts=5),
        )
        with pytest.raises(InjectedFault):
            eng.map(_square, range(6))

    @pytest.mark.parametrize(
        "backend",
        ["thread", pytest.param("process", marks=pytest.mark.process_backend)],
    )
    def test_parallel_retry_recovers(self, backend):
        with ExecutionEngine(
            backend=backend,
            workers=2,
            retry=RetryPolicy(max_retries=2),
            fault_injector=FaultInjector(fail_tasks=[0, 5]),
        ) as eng:
            assert eng.map(_square, range(8)) == [i * i for i in range(8)]
            assert eng.retries_total == 2

    def test_retry_emits_span_and_counter(self):
        obs.enable(reset=True)
        try:
            eng = ExecutionEngine(
                retry=RetryPolicy(max_retries=1),
                fault_injector=FaultInjector(fail_tasks=[1]),
            )
            eng.map(_square, range(4), label="unit")
            spans = [s for s in obs.tracer().spans if s.name == "exec.retry"]
            assert len(spans) == 1
            assert spans[0].attrs["task"] == 1
            assert obs.metrics().snapshot()["task_retries_total"]["value"] == 1
        finally:
            obs.disable()

    def test_seeded_failure_rate_is_deterministic(self):
        inj = FaultInjector(seed=42, task_failure_rate=0.5)
        draws = [inj.task_fault(i, 0) for i in range(64)]
        assert draws == [
            FaultInjector(seed=42, task_failure_rate=0.5).task_fault(i, 0)
            for i in range(64)
        ]
        assert any(draws) and not all(draws)
        # a different seed gives a different fault pattern
        other = [FaultInjector(seed=43, task_failure_rate=0.5).task_fault(i, 0)
                 for i in range(64)]
        assert draws != other

    def test_deadline_stops_retries(self):
        eng = ExecutionEngine(
            retry=RetryPolicy(max_retries=50, backoff_s=0.05, deadline_s=0.05),
            fault_injector=FaultInjector(fail_tasks=[0], fail_attempts=1000),
        )
        with pytest.raises(InjectedFault):
            eng.map(_square, range(2))

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultInjector(task_failure_rate=1.5)


class TestFallback:
    def test_thread_death_falls_back_to_serial(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ExecutionEngine(
                backend="thread",
                workers=2,
                fault_injector=FaultInjector(
                    die_on_dispatch=[0], die_backends=["thread"]
                ),
            ) as eng:
                assert eng.map(_square, range(8)) == [i * i for i in range(8)]
                assert eng.fallbacks == [("thread", "serial")]
                assert eng.effective_backend == "serial"
                # degradation is sticky: later maps stay serial
                assert eng.map(_square, range(8)) == [i * i for i in range(8)]
                assert eng.describe()["effective_backend"] == "serial"

    def test_process_death_degrades_down_the_chain(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ExecutionEngine(
                backend="process",
                workers=2,
                fault_injector=FaultInjector(die_on_dispatch=[0]),
            ) as eng:
                assert eng.map(_square, range(8)) == [i * i for i in range(8)]
                assert eng.fallbacks == [
                    ("process", "thread"),
                    ("thread", "serial"),
                ]

    def test_fallback_emits_span_and_counter(self):
        obs.enable(reset=True)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with ExecutionEngine(
                    backend="thread",
                    workers=2,
                    fault_injector=FaultInjector(
                        die_on_dispatch=[0], die_backends=["thread"]
                    ),
                ) as eng:
                    eng.map(_square, range(8))
            spans = [s for s in obs.tracer().spans if s.name == "exec.fallback"]
            assert len(spans) == 1
            assert spans[0].attrs["from_backend"] == "thread"
            assert spans[0].attrs["to_backend"] == "serial"
            snap = obs.metrics().snapshot()
            assert snap["exec_fallbacks_total"]["value"] == 1
        finally:
            obs.disable()

    def test_results_bit_identical_across_fallback(self, plummer_small):
        """A force pass that survives a backend death matches serial exactly."""
        cfg = PlanConfig(softening=EPS)
        ref = plan_by_name("j", cfg).accelerations(
            plummer_small.positions, plummer_small.masses
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ExecutionEngine(
                backend="thread",
                workers=2,
                fault_injector=FaultInjector(
                    die_on_dispatch=[0], die_backends=["thread"]
                ),
            ) as eng:
                acc = plan_by_name("j", cfg, engine=eng).accelerations(
                    plummer_small.positions, plummer_small.masses
                )
        assert_bit_identical(ref, acc, context="force pass across fallback")

    def test_serial_backend_cannot_die(self):
        eng = ExecutionEngine(
            fault_injector=FaultInjector(die_on_dispatch=[0, 1, 2])
        )
        assert eng.map(_square, range(4)) == [0, 1, 4, 9]
        assert eng.fallbacks == []


# ---------------------------------------------------------------------------
# End-to-end: faults during a checkpointed run
# ---------------------------------------------------------------------------

class TestFaultsEndToEnd:
    def test_interrupt_retry_fallback_resume_bit_identical(self, tmp_path):
        """The full gauntlet: task faults + a backend death + an interrupt,
        then resume — final state matches a clean serial run bit for bit.

        ``wg_size=32`` gives each force pass several i-block tasks, so
        dispatches really run parallel and the injected death can fire.
        """
        ref = make_sim(wg_size=32)
        ref.run(9)

        injector = FaultInjector(
            seed=1, task_failure_rate=0.1, die_on_dispatch=[2],
            die_backends=["thread"],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ExecutionEngine(
                backend="thread", workers=2,
                retry=RetryPolicy(max_retries=3), fault_injector=injector,
            ) as engine:
                session = RunSession(
                    make_sim(engine=engine, wg_size=32),
                    tmp_path / "run",
                    checkpoint_every=3,
                )
                with pytest.raises(Interrupt):
                    session.run(9, callback=interrupt_at(5))
                assert engine.fallbacks == [("thread", "serial")]

            resumed = RunSession.resume(tmp_path / "run")
            assert resumed.simulation.record.steps == 3
            resumed.run()

        assert_bit_identical(
            ref.particles.positions,
            resumed.simulation.particles.positions,
            context="fault gauntlet positions",
        )
        assert_bit_identical(
            ref.particles.velocities,
            resumed.simulation.particles.velocities,
            context="fault gauntlet velocities",
        )
        assert resumed.simulation.record.force_passes == ref.record.force_passes

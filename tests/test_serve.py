"""Tests for repro.serve: specs, queue, cache, scheduler, service.

The contracts under test:

1. :class:`JobSpec` is a canonical content address — equal physics
   yields equal hashes, ``checkpoint_every`` never enters the hash, and
   plan instances normalise to (name, config);
2. the queue enforces strict priority order with FIFO ties and rejects
   (``AdmissionError``) rather than blocks at capacity;
3. identical in-flight specs coalesce onto one handle, and a completed
   spec is answered from the content-addressed cache;
4. a job's final state is **bit-identical** whether it runs alone,
   step-sliced against siblings, or is served from cache;
5. a fault-injected job fails (or retries) inside its own engine without
   perturbing sibling jobs sharing the pool.
"""

import threading

import pytest

import repro
from repro import obs
from repro.core.plans import PlanConfig, get_plan
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ServeError,
)
from repro.exec import EnginePool, FaultInjector, RetryPolicy
from repro.serve import (
    Client,
    JobQueue,
    JobService,
    JobSpec,
    ResultCache,
    Scheduler,
    ServeSettings,
    current_settings,
)
from repro.serve.settings import clear_overrides, set_overrides
from repro.check import assert_bit_identical
from tests.conftest import small_spec, solo_state

pytestmark = [
    pytest.mark.serve,
    # This module exercises JobService/Client directly (their behaviour
    # is unchanged behind connect()); the deprecation contract itself is
    # covered in tests/test_distrib.py.
    pytest.mark.filterwarnings("ignore::DeprecationWarning"),
]


# ---------------------------------------------------------------------------
# JobSpec
# ---------------------------------------------------------------------------

class TestJobSpec:
    def test_hash_is_stable_and_canonical(self):
        a = small_spec()
        b = JobSpec(steps=5, dt=1e-3, plan="jw", seed=1, n=128)
        assert a.spec_hash() == b.spec_hash()
        assert len(a.spec_hash()) == 64

    def test_checkpoint_every_excluded_from_hash(self):
        assert (
            small_spec(checkpoint_every=0).spec_hash()
            == small_spec(checkpoint_every=2).spec_hash()
        )
        assert small_spec(checkpoint_every=2) == small_spec(checkpoint_every=3)

    def test_physics_fields_change_hash(self):
        base = small_spec()
        for variant in (
            small_spec(n=129),
            small_spec(seed=2),
            small_spec(plan="i"),
            small_spec(dt=2e-3),
            small_spec(steps=6),
            small_spec(workload="uniform"),
            small_spec(plan_config=PlanConfig(softening=0.05)),
        ):
            assert variant.spec_hash() != base.spec_hash()

    def test_plan_instance_normalises_to_name_and_config(self):
        cfg = PlanConfig(softening=0.05)
        by_instance = small_spec(plan=get_plan("w", cfg))
        by_name = small_spec(plan="w", plan_config=cfg)
        assert by_instance.plan == "w"
        assert by_instance.spec_hash() == by_name.spec_hash()

    def test_plan_instance_with_config_rejected(self):
        with pytest.raises(ServeError, match="plan_config"):
            small_spec(plan=get_plan("w"), plan_config=PlanConfig())

    def test_validation(self):
        with pytest.raises(ServeError, match="unknown plan"):
            small_spec(plan="nope")
        with pytest.raises(ServeError, match="unknown workload"):
            small_spec(workload="nope")
        with pytest.raises(ServeError, match="steps"):
            small_spec(steps=0)
        with pytest.raises(ServeError, match="dt"):
            small_spec(dt=0.0)
        with pytest.raises(ServeError, match="n must be"):
            small_spec(n=0)

    def test_round_trip_through_dict(self):
        spec = small_spec(checkpoint_every=2)
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()
        with pytest.raises(ServeError, match="unknown JobSpec fields"):
            JobSpec.from_dict({"n": 4, "bogus": 1})


# ---------------------------------------------------------------------------
# JobQueue
# ---------------------------------------------------------------------------

class TestJobQueue:
    def test_priority_order_fifo_within_level(self):
        q = JobQueue(capacity=10)
        q.push("low-1", priority=0)
        q.push("high-1", priority=5)
        q.push("low-2", priority=0)
        q.push("high-2", priority=5)
        assert [q.pop() for _ in range(4)] == [
            "high-1", "high-2", "low-1", "low-2"
        ]

    def test_capacity_rejection(self):
        q = JobQueue(capacity=2)
        q.push("a")
        q.push("b")
        with pytest.raises(AdmissionError, match="capacity"):
            q.push("c")
        assert q.rejected == 1
        q.pop()
        q.push("c")  # slot freed, accepted again
        assert q.accepted == 3

    def test_close_wakes_blocked_pop(self):
        q = JobQueue(capacity=2)
        got = []
        t = threading.Thread(target=lambda: got.append(q.pop(timeout=5)))
        t.start()
        q.close()
        t.join(timeout=5)
        assert got == [None]
        with pytest.raises(ServeError, match="closed"):
            q.push("x")

    def test_pop_timeout(self):
        assert JobQueue().pop(timeout=0.01) is None


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_miss_then_hit_after_service_run(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        assert cache.lookup(spec) is None
        with Client(cache_dir=tmp_path) as client:
            fresh = client.run(spec)
        assert not fresh.from_cache
        hit = cache.lookup(spec)
        assert hit is not None and hit.from_cache
        assert_bit_identical(fresh.positions, hit.positions)

    def test_incomplete_entry_is_miss_and_reclaimed(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        stale = cache.entry_dir(spec)
        stale.mkdir(parents=True)
        (stale / "manifest.json").write_text("{ not json")
        assert cache.lookup(spec) is None
        claimed = cache.claim(spec)
        assert claimed == stale and not claimed.exists()

    def test_claim_refuses_complete_entry(self, tmp_path):
        spec = small_spec()
        with Client(cache_dir=tmp_path) as client:
            client.run(spec)
        cache = ResultCache(tmp_path)
        with pytest.raises(ServeError, match="complete"):
            cache.claim(spec)
        assert cache.evict(spec)
        assert cache.lookup(spec) is None

    def test_concurrent_reclaim_has_exactly_one_winner(self, tmp_path):
        # Regression: reclaim used to rmtree the entry in place, so two
        # concurrent claimants could race the teardown (FileNotFoundError
        # mid-walk, or one deleting the directory the other had started
        # repopulating).  The rename-into-place makes it single-winner.
        spec = small_spec()
        cache = ResultCache(tmp_path)
        for attempt in range(5):
            stale = cache.entry_dir(spec)
            (stale / "ckpt_00000001").mkdir(parents=True)
            (stale / "manifest.json").write_text("{ not json")
            wins, errors = [], []
            barrier = threading.Barrier(4)

            def reclaim():
                barrier.wait()
                try:
                    wins.append(ResultCache._reclaim(stale))
                except Exception as exc:  # noqa: BLE001 - the regression
                    errors.append(exc)

            threads = [threading.Thread(target=reclaim) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert sum(wins) == 1, f"attempt {attempt}: {wins}"
            assert not stale.exists()
        # Retired debris is invisible to the entry count.
        assert len(cache) == 0

    def test_claim_or_resume_modes(self, tmp_path):
        spec = small_spec(steps=10, checkpoint_every=2)
        cache = ResultCache(tmp_path)
        # Nothing on disk: fresh.
        path, mode = cache.claim_or_resume(spec)
        assert mode == "fresh" and path == cache.entry_dir(spec)
        # Unusable debris (no checkpoints): retired, still fresh.
        path.mkdir(parents=True)
        (path / "manifest.json").write_text("{ not json")
        path, mode = cache.claim_or_resume(spec)
        assert mode == "fresh" and not path.exists()
        # An interrupted run with intact checkpoints: resume.
        from tests.conftest import Interrupt, interrupt_at

        session = repro.RunSession(
            spec.build_simulation(), path, checkpoint_every=2, ledger=False
        )
        with pytest.raises(Interrupt):
            session.run(spec.steps, callback=interrupt_at(5))
        path, mode = cache.claim_or_resume(spec)
        assert mode == "resume"
        # Completed by another shard between lookup and claim: complete.
        resumed = repro.RunSession.resume(path, ledger=False)
        resumed.run(spec.steps)
        path, mode = cache.claim_or_resume(spec)
        assert mode == "complete"
        assert cache.load(spec, from_cache=True).steps == spec.steps


# ---------------------------------------------------------------------------
# Service behaviour
# ---------------------------------------------------------------------------

class TestJobService:
    def test_batched_results_bit_identical_to_solo(self, tmp_path):
        specs = [
            small_spec(seed=s, plan=p)
            for s, p in [(1, "jw"), (2, "i"), (3, "w"), (4, "j")]
        ]
        with Client(
            cache_dir=tmp_path, max_concurrent_jobs=4, steps_per_slice=2
        ) as client:
            results = client.map(specs)
        for spec, result in zip(specs, results):
            pos, vel, time = solo_state(spec)
            assert_bit_identical(pos, result.positions)
            assert_bit_identical(vel, result.velocities)
            assert result.time == time
            assert result.steps == spec.steps

    def test_single_runner_interleaves_many_live_sessions(self, tmp_path):
        # One runner thread, four live sessions, 1-step slices: maximal
        # interleaving, still bit-identical per job.
        specs = [small_spec(seed=s) for s in (1, 2, 3, 4)]
        svc = JobService(
            cache_dir=tmp_path,
            max_concurrent_jobs=4,
            runner_threads=1,
            steps_per_slice=1,
        )
        try:
            handles = svc.submit_many(specs)
            results = [h.result(timeout=120) for h in handles]
        finally:
            svc.close()
        assert svc.scheduler.slices >= 4 * specs[0].steps
        for spec, result in zip(specs, results):
            pos, _, _ = solo_state(spec)
            assert_bit_identical(pos, result.positions)

    def test_cache_hit_bit_identical_to_fresh(self, tmp_path):
        spec = small_spec()
        with Client(cache_dir=tmp_path) as client:
            fresh = client.run(spec)
            cached = client.run(small_spec())  # equal spec, new object
        assert not fresh.from_cache and cached.from_cache
        assert_bit_identical(fresh.positions, cached.positions)
        assert_bit_identical(fresh.velocities, cached.velocities)
        assert cached.time == fresh.time
        assert cached.record == fresh.record

    def test_cache_survives_service_restart(self, tmp_path):
        spec = small_spec()
        with Client(cache_dir=tmp_path) as client:
            fresh = client.run(spec)
        with Client(cache_dir=tmp_path) as client:
            again = client.run(spec)
        assert again.from_cache
        assert_bit_identical(fresh.positions, again.positions)

    def test_inflight_dedup_returns_same_handle(self, tmp_path):
        svc = JobService(
            cache_dir=tmp_path, max_concurrent_jobs=1, runner_threads=1
        )
        try:
            first = svc.submit(small_spec(seed=7))
            dup = svc.submit(small_spec(seed=7))
            other = svc.submit(small_spec(seed=8))
            assert dup is first
            assert other is not first
            assert first.dedup_count == 1
            assert svc.deduped == 1
            first.result(timeout=120)
            other.result(timeout=120)
        finally:
            svc.close()

    def test_queue_capacity_rejects_submit(self, tmp_path):
        svc = JobService(
            cache_dir=tmp_path,
            queue_capacity=1,
            max_concurrent_jobs=1,
            runner_threads=1,
        )
        try:
            # Long-running jobs keep the single runner busy so the queue
            # actually fills: one live + one queued, third rejected.
            handles = [svc.submit(small_spec(seed=100, steps=50))]
            rejected = 0
            for s in range(101, 140):
                try:
                    handles.append(svc.submit(small_spec(seed=s, steps=50)))
                except AdmissionError:
                    rejected += 1
                    break
            assert rejected == 1, "capacity-1 queue never pushed back"
            for h in handles:
                h.result(timeout=120)
        finally:
            svc.close()

    def test_fault_injected_job_does_not_perturb_siblings(self, tmp_path):
        good_spec = small_spec(seed=1)
        bad_spec = small_spec(seed=9, plan="i")
        pos, vel, _ = solo_state(good_spec)
        with Client(cache_dir=tmp_path, max_concurrent_jobs=2) as client:
            bad = client.service.submit(
                bad_spec,
                fault_injector=FaultInjector(
                    seed=7, task_failure_rate=1.0, fail_attempts=99
                ),
            )
            good = client.service.submit(good_spec)
            result = good.result(timeout=120)
            bad.wait(timeout=120)
        assert bad.status == "failed" and bad.error is not None
        with pytest.raises(Exception):
            bad.result()
        assert_bit_identical(pos, result.positions)
        assert_bit_identical(vel, result.velocities)

    def test_faulty_job_with_retries_still_bit_identical(self, tmp_path):
        spec = small_spec(seed=3, plan="j")
        pos, _, _ = solo_state(spec)
        with Client(cache_dir=tmp_path) as client:
            handle = client.service.submit(
                spec,
                fault_injector=FaultInjector(
                    seed=5, task_failure_rate=0.3, fail_attempts=1
                ),
                retry=RetryPolicy(max_retries=5, backoff_s=0.0),
            )
            result = handle.result(timeout=120)
        assert not result.from_cache
        assert_bit_identical(pos, result.positions)

    def test_failed_job_not_cached(self, tmp_path):
        spec = small_spec(seed=9)
        with Client(cache_dir=tmp_path) as client:
            bad = client.service.submit(
                spec,
                fault_injector=FaultInjector(
                    seed=1, task_failure_rate=1.0, fail_attempts=99
                ),
            )
            bad.wait(timeout=120)
            assert bad.status == "failed"
            # Same spec resubmitted healthy: must re-run, not hit cache.
            result = client.service.submit(spec).result(timeout=120)
        assert not result.from_cache
        pos, _, _ = solo_state(spec)
        assert_bit_identical(pos, result.positions)

    def test_process_pool_backend(self, tmp_path):
        spec = small_spec()
        pos, _, _ = solo_state(spec)
        with Client(
            cache_dir=tmp_path, pool_backend="process", pool_workers=2
        ) as client:
            result = client.run(spec)
        assert_bit_identical(pos, result.positions)

    def test_shared_pool_injection_left_open(self, tmp_path):
        with EnginePool(backend="thread", workers=2) as pool:
            svc = JobService(cache_dir=tmp_path, pool=pool)
            svc.run(small_spec())
            svc.close()
            # An injected pool survives service close for its owner.
            engine = pool.engine()
            assert engine.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_close_without_drain_fails_pending(self, tmp_path):
        svc = JobService(
            cache_dir=tmp_path, max_concurrent_jobs=1, runner_threads=1
        )
        handles = [
            svc.submit(small_spec(seed=200 + s, n=512, steps=100))
            for s in range(4)
        ]
        svc.close(drain=False)
        for h in handles:
            assert h.wait(timeout=30)
        assert any(h.status == "failed" for h in handles)
        with pytest.raises(ServeError, match="closed"):
            svc.submit(small_spec())

    def test_serve_metrics_and_span_emitted(self, tmp_path):
        with obs.capture() as (tracer, metrics):
            with Client(cache_dir=tmp_path) as client:
                client.run(small_spec(seed=31))
                client.run(small_spec(seed=31))  # cache hit
        assert metrics.get("serve.jobs_total").value == 2
        assert metrics.get("serve.cache_hits_total").value == 1
        assert metrics.get("serve.jobs_completed_total").value == 1
        assert metrics.get("serve.queue_depth") is not None
        assert any(s.name == "serve.job" for s in tracer.spans)


# ---------------------------------------------------------------------------
# Settings precedence
# ---------------------------------------------------------------------------

class TestServeSettings:
    def teardown_method(self):
        clear_overrides()

    def test_defaults(self):
        s = ServeSettings()
        assert s.max_concurrent_jobs == 2
        assert s.queue_capacity == 64

    def test_env_overrides_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_CONCURRENT_JOBS", "7")
        monkeypatch.setenv("REPRO_SERVE_CACHE_DIR", "/tmp/envcache")
        s = current_settings()
        assert s.max_concurrent_jobs == 7
        assert s.cache_dir == "/tmp/envcache"
        assert s.queue_capacity == 64

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_CONCURRENT_JOBS", "7")
        repro.configure(max_concurrent_jobs=3)
        assert current_settings().max_concurrent_jobs == 3

    def test_explicit_kwarg_beats_configure(self, tmp_path):
        repro.configure(max_concurrent_jobs=3, cache_dir=str(tmp_path / "c"))
        svc = JobService(max_concurrent_jobs=5)
        try:
            assert svc.settings.max_concurrent_jobs == 5
            assert svc.settings.cache_dir == str(tmp_path / "c")
        finally:
            svc.close()

    def test_validation(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            ServeSettings(max_concurrent_jobs=0)
        with pytest.raises(ConfigurationError):
            ServeSettings(queue_capacity=0)
        monkeypatch.setenv("REPRO_SERVE_QUEUE_CAPACITY", "zap")
        with pytest.raises(ConfigurationError, match="integer"):
            current_settings()
        monkeypatch.delenv("REPRO_SERVE_QUEUE_CAPACITY")
        with pytest.raises(ConfigurationError):
            repro.configure(queue_capacity=-1)
        # the failed configure must not leave partial state
        assert current_settings().queue_capacity == 64


# ---------------------------------------------------------------------------
# Scheduler edge cases
# ---------------------------------------------------------------------------

class _FakeJob:
    def __init__(self, slices_needed=1):
        self.left = slices_needed
        self.events = []

    def begin(self):
        self.events.append("begin")

    def advance(self, k):
        self.left -= 1
        self.events.append("advance")
        return self.left <= 0

    def finish(self):
        self.events.append("finish")

    def fail(self, exc):
        self.events.append(("fail", type(exc).__name__))


class TestScheduler:
    def test_drain_completes_all(self):
        q = JobQueue(capacity=16)
        jobs = [_FakeJob(slices_needed=3) for _ in range(6)]
        for j in jobs:
            q.push(j)
        sched = Scheduler(q, max_live=2, runner_threads=1, steps_per_slice=1)
        sched.start()
        sched.stop(drain=True, timeout=30)
        assert all(j.events[-1] == "finish" for j in jobs)
        assert sched.slices == 18

    def test_begin_failure_routes_to_fail(self):
        class ExplodingJob(_FakeJob):
            def begin(self):
                raise RuntimeError("boom")

        q = JobQueue(capacity=4)
        job = ExplodingJob()
        q.push(job)
        sched = Scheduler(q, max_live=1, runner_threads=1)
        sched.start()
        sched.stop(drain=True, timeout=30)
        assert ("fail", "RuntimeError") in job.events

    def test_abort_fails_leftovers(self):
        q = JobQueue(capacity=16)
        jobs = [_FakeJob(slices_needed=10_000) for _ in range(4)]
        for j in jobs:
            q.push(j)
        sched = Scheduler(q, max_live=1, runner_threads=1, steps_per_slice=1)
        sched.start()
        sched.stop(drain=False, timeout=30)
        assert any(("fail", "ServeError") in j.events for j in jobs)

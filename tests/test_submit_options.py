"""SubmitOptions: the one submission-tuning surface across every path.

The contract under test: (a) the dataclass validates and round-trips
its wire-safe subset as JSON; (b) every submit surface accepts
``options=`` without warnings; (c) the legacy kwargs still work but emit
*exactly one* DeprecationWarning; (d) mixing both forms is an error, not
a guess.
"""

import json
import warnings

import pytest

from tests.conftest import small_spec

from repro.errors import ServeError
from repro.exec.faults import FaultInjector, RetryPolicy
from repro.serve import SubmitOptions, connect
from repro.serve.options import DEPRECATED_SUBMIT_KWARGS, resolve_options


def deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestDataclass:
    def test_defaults(self):
        opts = SubmitOptions()
        assert opts.priority == 0
        assert opts.tenant is None
        assert opts.retry is None
        assert opts.fault_injector is None
        assert opts.verify is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SubmitOptions().priority = 3

    @pytest.mark.parametrize("bad", ["3", 1.5, True])
    def test_priority_must_be_int(self, bad):
        with pytest.raises(ServeError, match="priority"):
            SubmitOptions(priority=bad)

    @pytest.mark.parametrize("bad", ["", 7])
    def test_tenant_must_be_nonempty_string(self, bad):
        with pytest.raises(ServeError, match="tenant"):
            SubmitOptions(tenant=bad)

    def test_with_defaults_fills_only_missing_tenant(self):
        assert SubmitOptions().with_defaults(tenant="t").tenant == "t"
        assert (
            SubmitOptions(tenant="own").with_defaults(tenant="t").tenant
            == "own"
        )


class TestWireRoundTrip:
    def test_to_wire_omits_defaults(self):
        assert SubmitOptions().to_wire() == {}
        assert SubmitOptions(priority=2).to_wire() == {"priority": 2}

    def test_json_round_trip(self):
        opts = SubmitOptions(priority=-1, tenant="acme")
        payload = json.loads(json.dumps(opts.to_wire()))
        assert SubmitOptions.from_wire(payload) == opts

    def test_from_wire_rejects_unknown_keys(self):
        with pytest.raises(ServeError, match="unknown"):
            SubmitOptions.from_wire({"priority": 1, "nice": 19})

    def test_in_process_only_fields_refuse_the_wire(self):
        opts = SubmitOptions(retry=RetryPolicy(max_retries=1))
        assert not opts.wire_safe()
        with pytest.raises(ServeError, match="retry"):
            opts.to_wire()

    def test_wire_safe_subset_is_wire_safe(self):
        assert SubmitOptions(priority=5, tenant="t").wire_safe()


class TestResolveOptions:
    def test_passing_both_forms_is_an_error(self):
        with pytest.raises(ServeError, match="not both"):
            resolve_options(
                SubmitOptions(priority=1), {"priority": 2}, where="here"
            )

    def test_legacy_kwargs_warn_once_naming_the_surface(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            opts = resolve_options(
                None,
                {"priority": 3, "retry": RetryPolicy(max_retries=2)},
                where="TestSurface.submit",
            )
        dep = deprecations(record)
        assert len(dep) == 1
        assert "TestSurface.submit" in str(dep[0].message)
        assert opts.priority == 3
        assert opts.retry.max_retries == 2

    def test_default_valued_kwargs_are_not_passed(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            opts = resolve_options(
                None,
                {name: SubmitOptions.__dataclass_fields__[name].default
                 for name in DEPRECATED_SUBMIT_KWARGS},
                where="x",
            )
        assert not deprecations(record)
        assert opts == SubmitOptions()


class TestSurfaces:
    """Each submit surface: options silent, legacy exactly-one-warning."""

    def test_service_submit_options_is_warning_free(self, tmp_path):
        with connect(
            None, cache_dir=tmp_path / "cache", ledger=False
        ) as client:
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                handle = client.submit(
                    small_spec(seed=31), options=SubmitOptions(priority=1)
                )
            handle.result(timeout=60)
            assert not deprecations(record)

    def test_service_submit_legacy_priority_warns_once(self, tmp_path):
        with connect(
            None, cache_dir=tmp_path / "cache", ledger=False
        ) as client:
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                handle = client.submit(small_spec(seed=32), priority=2)
            handle.result(timeout=60)
            assert len(deprecations(record)) == 1

    def test_service_submit_legacy_fault_kwargs_warn_once(self, tmp_path):
        with connect(
            None, cache_dir=tmp_path / "cache", ledger=False
        ) as client:
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                handle = client.submit(
                    small_spec(seed=33),
                    retry=RetryPolicy(max_retries=1),
                    fault_injector=FaultInjector(seed=7),
                )
            handle.result(timeout=60)
            assert len(deprecations(record)) == 1

    def test_client_map_legacy_priority_warns_once_for_whole_batch(
        self, tmp_path
    ):
        with connect(
            None, cache_dir=tmp_path / "cache", ledger=False
        ) as client:
            specs = [small_spec(seed=34 + i) for i in range(3)]
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                client.map(specs, priority=1, timeout=120)
            assert len(deprecations(record)) == 1

    def test_remote_rejects_in_process_only_options(self, tmp_path):
        from repro.serve import Coordinator

        with Coordinator(
            "127.0.0.1:0", cache_dir=tmp_path / "cache", ledger=False
        ) as coord:
            with connect(coord.addr) as client:
                with pytest.raises(ServeError, match="worker shards"):
                    client.submit(
                        small_spec(seed=40),
                        options=SubmitOptions(
                            verify=True, retry=RetryPolicy(max_retries=1)
                        ),
                    )

    def test_remote_submit_options_round_trip(self, tmp_path):
        """priority+tenant ride the wire; the coordinator echoes tenant."""
        from repro.serve import Coordinator, Worker

        cache = tmp_path / "cache"
        with Coordinator(
            "127.0.0.1:0", cache_dir=cache, ledger=False
        ) as coord:
            with Worker(
                coord.addr, "shard-t", cache_dir=cache, ledger=False
            ) as _worker:
                with connect(coord.addr) as client:
                    with warnings.catch_warnings(record=True) as record:
                        warnings.simplefilter("always")
                        handle = client.submit(
                            small_spec(seed=41),
                            options=SubmitOptions(priority=2, tenant="acme"),
                        )
                    handle.result(timeout=120)
                    assert not deprecations(record)
                    assert handle.tenant == "acme"

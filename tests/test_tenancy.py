"""Multi-tenant fair scheduling: FairJobQueue, quotas, aging, cancel.

Everything here is deterministic by construction — the queue's decisions
depend only on the submission/pop sequence (pop count is the aging
clock), never wall time, so each assertion is exact, not statistical.
"""

import pytest

from tests.conftest import small_spec, solo_state

import numpy as np

from repro.errors import (
    AdmissionError,
    JobCancelledError,
    QuotaError,
    ServeError,
)
from repro.serve import DEFAULT_TENANT, FairJobQueue, TenantPolicy, connect
from repro.serve.options import SubmitOptions


def drain(queue, count=None):
    out = []
    while count is None or len(out) < count:
        entry = queue.pop_nowait()
        if entry is None:
            break
        out.append(entry)
    return out


class TestTenantPolicy:
    def test_defaults_are_unbounded_weight_one(self):
        policy = TenantPolicy()
        assert policy.weight == 1.0
        assert policy.max_queued is None
        assert policy.max_inflight is None

    @pytest.mark.parametrize("bad", [0, -1.0])
    def test_nonpositive_weight_rejected(self, bad):
        with pytest.raises(ServeError, match="weight"):
            TenantPolicy(weight=bad)

    @pytest.mark.parametrize("field", ["max_queued", "max_inflight"])
    def test_zero_quota_rejected(self, field):
        with pytest.raises(ServeError, match=field):
            TenantPolicy(**{field: 0})


class TestWeightedFairness:
    def test_single_tenant_degrades_to_priority_fifo(self):
        q = FairJobQueue(capacity=16)
        q.push("low-a", priority=0)
        q.push("high", priority=5)
        q.push("low-b", priority=0)
        assert [e.item for e in drain(q)] == ["high", "low-a", "low-b"]

    def test_weight_four_gets_four_to_one_share(self):
        q = FairJobQueue(
            capacity=32,
            tenants={"fast": {"weight": 4.0}, "slow": {"weight": 1.0}},
        )
        for i in range(8):
            q.push(f"f{i}", tenant="fast")
        for i in range(8):
            q.push(f"s{i}", tenant="slow")
        first_ten = [e.tenant for e in drain(q, 10)]
        # 4:1 stride: in any 5-pop window under contention, fast pops 4.
        assert first_ten.count("fast") == 8
        assert first_ten.count("slow") == 2

    def test_burst_tenant_cannot_starve_other_tenant(self):
        """A 50-job burst from one tenant doesn't block a sibling's job."""
        q = FairJobQueue(capacity=64, tenants={"bursty": {"weight": 1.0}})
        for i in range(50):
            q.push(f"burst{i}", tenant="bursty")
        q.push("probe", tenant="victim")
        # Equal weights: the victim's lone job pops within the first two.
        popped = [e.item for e in drain(q, 2)]
        assert "probe" in popped

    def test_idle_tenant_starts_at_current_vtime(self):
        """An idle tenant earns no catch-up credit for time not queued."""
        q = FairJobQueue(capacity=64)
        for i in range(10):
            q.push(f"a{i}", tenant="alpha")
        drain(q, 10)  # alpha's pass is now well ahead of 0
        q.push("a-new", tenant="alpha")
        q.push("b-new", tenant="beta")
        # beta (fresh) starts at the vtime alpha reached — it pops first
        # on the name tie-break, but alpha pops second, not after some
        # imagined backlog of beta credit.
        assert {e.item for e in drain(q, 2)} == {"a-new", "b-new"}

    def test_determinism_same_sequence_same_order(self):
        def build():
            q = FairJobQueue(
                capacity=64,
                tenants={"x": {"weight": 3.0}, "y": {"weight": 1.0}},
            )
            for i in range(6):
                q.push(f"x{i}", tenant="x", priority=i % 2)
                q.push(f"y{i}", tenant="y", priority=(i + 1) % 3)
            return [e.item for e in drain(q)]

        assert build() == build()


class TestPriorityAging:
    def test_aged_bulk_job_eventually_runs(self):
        """A priority-0 job overtakes fresh priority-1 work via aging."""
        q = FairJobQueue(capacity=128, aging_every=2, age_max_boost=8)
        q.push("old-bulk", priority=0)
        # Keep feeding fresh priority-1 jobs; after 2 pops the bulk job's
        # effective priority reaches 1 and FIFO (older seq) breaks the tie.
        order = []
        for i in range(6):
            q.push(f"fresh{i}", priority=1)
            order.append(q.pop_nowait().item)
        assert "old-bulk" in order

    def test_age_boost_is_capped(self):
        """Aging can never permanently outrank fresh interactive work."""
        q = FairJobQueue(capacity=128, aging_every=1, age_max_boost=2)
        q.push("bulk", priority=0)
        # Burn pops so bulk's boost saturates at +2.
        for i in range(10):
            q.push(f"filler{i}", priority=5)
            q.pop_nowait()
        q.push("interactive", priority=5)
        assert q.pop_nowait().item == "interactive"

    def test_aging_clock_is_pop_count_not_time(self):
        q = FairJobQueue(capacity=16, aging_every=4)
        q.push("bulk", priority=0)
        # No pops happened: zero boost regardless of elapsed wall time.
        q.push("fresh", priority=1)
        assert q.pop_nowait().item == "fresh"


class TestQuotas:
    def test_max_queued_raises_quota_error_deterministically(self):
        q = FairJobQueue(capacity=64, tenants={"t": {"max_queued": 2}})
        q.push("a", tenant="t")
        q.push("b", tenant="t")
        with pytest.raises(QuotaError, match="max_queued") as exc_info:
            q.push("c", tenant="t")
        assert exc_info.value.tenant == "t"
        # QuotaError is an AdmissionError: existing backpressure handling
        # (CLI exit 3, gateway 429) applies unchanged.
        assert isinstance(exc_info.value, AdmissionError)
        # Deterministic: the same sequence sheds the same job again.
        with pytest.raises(QuotaError):
            q.push("c", tenant="t")
        # Other tenants are unaffected.
        q.push("x", tenant="other")

    def test_global_capacity_still_plain_admission_error(self):
        q = FairJobQueue(capacity=1)
        q.push("a")
        with pytest.raises(AdmissionError) as exc_info:
            q.push("b")
        assert not isinstance(exc_info.value, QuotaError)

    def test_force_push_bypasses_capacity_and_quota(self):
        """The coordinator's requeue path must never shed lost claims."""
        q = FairJobQueue(capacity=1, tenants={"t": {"max_queued": 1}})
        q.push("a", tenant="t")
        q.push("requeued", tenant="t", force=True)
        assert len(q) == 2

    def test_max_inflight_enforced_by_service(self, tmp_path):
        with connect(
            None,
            max_concurrent_jobs=1,
            cache_dir=tmp_path / "cache",
            ledger=False,
            tenants={"capped": {"max_inflight": 2}},
        ) as client:
            specs = [small_spec(seed=i, steps=20) for i in range(3)]
            client.submit(specs[0], options=SubmitOptions(tenant="capped"))
            client.submit(specs[1], options=SubmitOptions(tenant="capped"))
            with pytest.raises(QuotaError, match="max_inflight"):
                client.submit(specs[2], options=SubmitOptions(tenant="capped"))


class TestRemove:
    def test_remove_plucks_matching_items_only(self):
        q = FairJobQueue(capacity=16)
        for i in range(5):
            q.push(i, tenant="a" if i % 2 else "b")
        removed = q.remove(lambda item: item >= 3)
        assert sorted(removed) == [3, 4]
        assert sorted(e.item for e in drain(q)) == [0, 1, 2]

    def test_remove_preserves_fairness_state(self):
        q = FairJobQueue(
            capacity=32, tenants={"f": {"weight": 4.0}, "s": {"weight": 1.0}}
        )
        for i in range(4):
            q.push(f"f{i}", tenant="f")
            q.push(f"s{i}", tenant="s")
        q.remove(lambda item: item == "f0")
        tenants = [e.tenant for e in drain(q, 5)]
        assert tenants.count("f") == 3  # remaining fast jobs keep their share


class TestCancellation:
    def test_cancel_queued_job_raises_cancelled(self, tmp_path):
        with connect(
            None,
            max_concurrent_jobs=1,
            cache_dir=tmp_path / "cache",
            ledger=False,
        ) as client:
            blocker = client.submit(small_spec(seed=1, steps=30))
            queued = client.submit(small_spec(seed=2, steps=30))
            assert client.cancel(queued.spec_hash) is True
            with pytest.raises(JobCancelledError):
                queued.result(timeout=10)
            assert queued.status == "cancelled"
            blocker.result(timeout=60)

    def test_cancel_mid_slice_leaves_no_orphan_cache_claim(self, tmp_path):
        """A cancelled running job evicts its claim — nothing to adopt."""
        cache_dir = tmp_path / "cache"
        with connect(
            None,
            max_concurrent_jobs=1,
            steps_per_slice=1,
            cache_dir=cache_dir,
            ledger=False,
        ) as client:
            service = client.service
            spec = small_spec(seed=3, steps=400)
            handle = client.submit(spec)
            # Wait until it is actually running (first slice done).
            import time as _time
            deadline = _time.monotonic() + 30
            while handle.status != "running" and _time.monotonic() < deadline:
                _time.sleep(0.005)
            assert client.cancel(handle.spec_hash) is True
            with pytest.raises(JobCancelledError):
                handle.result(timeout=30)
            # The cache holds neither a completed entry nor a claim dir.
            assert service.cache.lookup(spec) is None
            assert not service.cache.entry_dir(spec).exists()

    def test_cancel_unknown_or_done_returns_false(self, tmp_path):
        with connect(
            None, cache_dir=tmp_path / "cache", ledger=False
        ) as client:
            handle = client.submit(small_spec(seed=4))
            handle.result(timeout=60)
            assert client.cancel(handle.spec_hash) is False
            assert client.cancel("no-such-hash") is False

    def test_cancelled_job_counts_in_describe(self, tmp_path):
        with connect(
            None,
            max_concurrent_jobs=1,
            cache_dir=tmp_path / "cache",
            ledger=False,
        ) as client:
            blocker = client.submit(small_spec(seed=5, steps=30))
            queued = client.submit(small_spec(seed=6, steps=30))
            client.cancel(queued.spec_hash)
            assert client.describe()["cancelled"] == 1
            blocker.result(timeout=60)


class TestFairServiceIntegration:
    def test_results_bit_identical_under_fair_scheduling(self, tmp_path):
        """Fairness reorders *scheduling*, never physics."""
        specs = [small_spec(seed=10 + i, steps=6) for i in range(4)]
        tenants = ["a", "b", "a", "b"]
        with connect(
            None,
            max_concurrent_jobs=2,
            cache_dir=tmp_path / "cache",
            ledger=False,
            tenants={"a": {"weight": 3.0}, "b": {"weight": 1.0}},
        ) as client:
            handles = [
                client.submit(s, options=SubmitOptions(tenant=t))
                for s, t in zip(specs, tenants)
            ]
            for handle, spec in zip(handles, specs):
                result = handle.result(timeout=120)
                pos, vel, time = solo_state(spec)
                np.testing.assert_array_equal(result.positions, pos)
                np.testing.assert_array_equal(result.velocities, vel)

    def test_default_tenant_label_applied(self, tmp_path):
        with connect(
            None, cache_dir=tmp_path / "cache", ledger=False
        ) as client:
            handle = client.submit(small_spec(seed=20))
            handle.result(timeout=60)
            assert handle.tenant == DEFAULT_TENANT

    def test_describe_reports_tenant_dimension(self, tmp_path):
        from repro.serve import validate_describe

        with connect(
            None,
            cache_dir=tmp_path / "cache",
            ledger=False,
            tenants={"vip": {"weight": 2.0, "max_queued": 9}},
        ) as client:
            doc = validate_describe(client.describe())
            assert doc["kind"] == "service"
            assert doc["tenants"]["vip"]["weight"] == 2.0
            assert doc["tenants"]["vip"]["max_queued"] == 9

"""Unit tests for walk-list force evaluation and error metrics."""

import numpy as np
import pytest

from repro.nbody.forces import direct_forces
from repro.tree.bh_force import (
    accelerations_from_walks,
    max_relative_error,
    rms_relative_error,
    walk_sources,
)
from repro.tree.octree import build_octree
from repro.tree.traversal import bh_accelerations
from repro.tree.walks import WalkSet, generate_walks

EPS = 1e-2


@pytest.fixture(scope="module")
def tree(plummer_medium):
    return build_octree(plummer_medium.positions, plummer_medium.masses, leaf_size=16)


@pytest.fixture(scope="module")
def walks(tree):
    return generate_walks(tree, theta=0.6, group_size=128)


@pytest.fixture(scope="module")
def direct_ref(plummer_medium):
    return direct_forces(
        plummer_medium.positions, plummer_medium.masses, softening=EPS,
        include_self=False,
    )


class TestWalkSources:
    def test_source_count(self, tree, walks):
        w = walks[0]
        pos, mass = walk_sources(tree, w)
        assert pos.shape == (w.list_length, 3)
        assert mass.shape == (w.list_length,)

    def test_total_source_mass(self, tree, walks):
        """Cells + particles of a walk account for the whole system mass."""
        w = walks[0]
        _, mass = walk_sources(tree, w)
        assert mass.sum() == pytest.approx(tree.masses.sum(), rel=1e-12)


class TestWalkForces:
    def test_accuracy_vs_direct(self, walks, direct_ref):
        acc = accelerations_from_walks(walks, softening=EPS)
        assert rms_relative_error(acc, direct_ref) < 0.01

    def test_walks_at_least_as_accurate_as_point_bh(self, tree, walks, direct_ref):
        """The group MAC is conservative, so walk forces should not be much
        worse than per-body BH at the same theta."""
        acc_w = accelerations_from_walks(walks, softening=EPS)
        acc_p = bh_accelerations(tree, theta=0.6, softening=EPS)
        err_w = rms_relative_error(acc_w, direct_ref)
        err_p = rms_relative_error(acc_p, direct_ref)
        assert err_w <= err_p * 1.5

    def test_float32_close_to_float64(self, walks):
        a32 = accelerations_from_walks(walks, softening=EPS, dtype=np.float32)
        a64 = accelerations_from_walks(walks, softening=EPS, dtype=np.float64)
        assert rms_relative_error(a32, a64) < 1e-4

    def test_incomplete_walks_rejected(self, tree, walks):
        partial = WalkSet(tree, list(walks)[:-1], walks.theta)
        with pytest.raises(ValueError, match="cover"):
            accelerations_from_walks(partial, softening=EPS)


class TestErrorMetrics:
    def test_zero_error_for_identical(self, rng):
        a = rng.standard_normal((10, 3))
        assert rms_relative_error(a, a) == 0.0
        assert max_relative_error(a, a) == 0.0

    def test_known_error(self):
        ref = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        acc = np.array([[1.1, 0.0, 0.0], [0.0, 2.0, 0.0]])
        assert max_relative_error(acc, ref) == pytest.approx(0.1)
        assert rms_relative_error(acc, ref) == pytest.approx(0.1 / np.sqrt(2))

    def test_max_at_least_rms(self, rng):
        ref = rng.standard_normal((50, 3)) + 2.0
        acc = ref + 0.01 * rng.standard_normal((50, 3))
        assert max_relative_error(acc, ref) >= rms_relative_error(acc, ref)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            rms_relative_error(np.zeros((2, 3)), np.zeros((3, 3)))
        with pytest.raises(ValueError, match="shape"):
            max_relative_error(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_zero_reference_rejected(self):
        ref = np.zeros((2, 3))
        with pytest.raises(ValueError, match="zero"):
            rms_relative_error(np.ones((2, 3)), ref)

"""Unit tests for the multipole acceptance criteria."""

import numpy as np
import pytest

from repro.tree.mac import GroupMAC, PointMAC, SizeLimitedMAC, aabb_distance


class TestAabbDistance:
    def test_point_inside_is_zero(self):
        lo, hi = np.array([-1.0, -1.0, -1.0]), np.array([1.0, 1.0, 1.0])
        assert aabb_distance(lo, hi, np.array([0.2, -0.3, 0.9])) == 0.0

    def test_point_on_face(self):
        lo, hi = np.zeros(3), np.ones(3)
        assert aabb_distance(lo, hi, np.array([2.0, 0.5, 0.5])) == pytest.approx(1.0)

    def test_point_at_corner(self):
        lo, hi = np.zeros(3), np.ones(3)
        d = aabb_distance(lo, hi, np.array([2.0, 2.0, 2.0]))
        assert d == pytest.approx(np.sqrt(3.0))

    def test_vectorised(self):
        lo, hi = np.zeros(3), np.ones(3)
        pts = np.array([[0.5, 0.5, 0.5], [2.0, 0.5, 0.5]])
        d = aabb_distance(lo, hi, pts)
        np.testing.assert_allclose(d, [0.0, 1.0])


class TestPointMAC:
    def test_accepts_distant_cell(self):
        mac = PointMAC(theta=0.6)
        assert mac.accept(np.array([1.0]), np.array([10.0]))[0]

    def test_rejects_close_cell(self):
        mac = PointMAC(theta=0.6)
        assert not mac.accept(np.array([1.0]), np.array([1.0]))[0]

    def test_threshold_is_strict(self):
        mac = PointMAC(theta=0.5)
        # l / D == theta exactly -> reject (criterion is l/D < theta)
        assert not mac.accept(np.array([1.0]), np.array([2.0]))[0]

    def test_zero_distance_never_accepts(self):
        mac = PointMAC(theta=100.0)
        assert not mac.accept(np.array([1.0]), np.array([0.0]))[0]

    def test_smaller_theta_is_stricter(self):
        sizes = np.array([1.0])
        d = np.array([1.8])
        assert PointMAC(theta=0.8).accept(sizes, d)[0]
        assert not PointMAC(theta=0.3).accept(sizes, d)[0]

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError, match="theta"):
            PointMAC(theta=0.0)


class TestGroupMAC:
    def test_conservative_vs_point(self, rng):
        """Group acceptance implies point acceptance for every member."""
        mac_g = GroupMAC(theta=0.6)
        mac_p = PointMAC(theta=0.6)
        lo = np.array([-0.5, -0.5, -0.5])
        hi = np.array([0.5, 0.5, 0.5])
        members = rng.uniform(-0.5, 0.5, (50, 3))
        coms = rng.uniform(-5, 5, (40, 3))
        sizes = rng.uniform(0.1, 2.0, 40)
        group_ok = mac_g.accept(sizes, lo, hi, coms)
        for k in np.flatnonzero(group_ok):
            dists = np.linalg.norm(members - coms[k], axis=1)
            assert mac_p.accept(np.full(50, sizes[k]), dists).all()

    def test_cell_inside_box_never_accepted(self):
        mac = GroupMAC(theta=10.0)
        lo, hi = np.zeros(3), np.ones(3)
        ok = mac.accept(np.array([0.1]), lo, hi, np.array([[0.5, 0.5, 0.5]]))
        assert not ok[0]

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError, match="theta"):
            GroupMAC(theta=-0.1)


class TestSizeLimitedMAC:
    def test_behaves_like_point_mac_without_cap(self):
        a = SizeLimitedMAC(theta=0.6)
        b = PointMAC(theta=0.6)
        sizes = np.array([0.5, 1.0, 2.0])
        d = np.array([10.0, 1.0, 5.0])
        np.testing.assert_array_equal(a.accept(sizes, d), b.accept(sizes, d))

    def test_cap_rejects_large_cells(self):
        mac = SizeLimitedMAC(theta=0.6, max_size=0.8)
        # distant but too large
        assert not mac.accept(np.array([1.0]), np.array([100.0]))[0]
        assert mac.accept(np.array([0.5]), np.array([100.0]))[0]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SizeLimitedMAC(theta=0.0)
        with pytest.raises(ValueError):
            SizeLimitedMAC(theta=0.5, max_size=0.0)

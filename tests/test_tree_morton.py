"""Unit tests for Morton keys."""

import numpy as np
import pytest

from repro.tree import morton


class TestEncodeDecode:
    def test_roundtrip_random(self, rng):
        pos = rng.uniform(-3.0, 3.0, (500, 3))
        center = np.zeros(3)
        half = 3.5
        keys = morton.encode(pos, center, half)
        cells = morton.decode(keys)
        np.testing.assert_array_equal(cells, morton.grid_coordinates(pos, center, half))

    def test_keys_fit_in_63_bits(self, rng):
        pos = rng.uniform(-1.0, 1.0, (100, 3))
        keys = morton.encode(pos, np.zeros(3), 1.1)
        assert np.all(keys < np.uint64(1) << np.uint64(morton.KEY_BITS))

    def test_origin_maps_to_middle_cell(self):
        keys = morton.encode(np.zeros((1, 3)), np.zeros(3), 1.0)
        cells = morton.decode(keys)
        assert np.all(cells[0] == 2**20)  # grid midpoint

    def test_corner_cells(self):
        lo = np.array([[-1.0, -1.0, -1.0]])
        keys = morton.encode(lo, np.zeros(3), 1.0)
        assert keys[0] == 0

    def test_boundary_clipping(self):
        # a body exactly on the high boundary must clip into the last cell
        hi = np.array([[1.0, 1.0, 1.0]])
        keys = morton.encode(hi, np.zeros(3), 1.0)
        cells = morton.decode(keys)
        assert np.all(cells == 2**21 - 1)

    def test_spatial_ordering_locality(self):
        # two points in the same octant share the leading digit
        a = np.array([[0.5, 0.5, 0.5], [0.6, 0.6, 0.6], [-0.5, -0.5, -0.5]])
        keys = morton.encode(a, np.zeros(3), 1.0)
        assert morton.key_octant(keys, 0)[0] == morton.key_octant(keys, 0)[1]
        assert morton.key_octant(keys, 0)[0] != morton.key_octant(keys, 0)[2]

    def test_rejects_nonpositive_half_width(self):
        with pytest.raises(ValueError, match="half_width"):
            morton.grid_coordinates(np.zeros((1, 3)), np.zeros(3), 0.0)


class TestKeyOctant:
    def test_x_is_high_bit(self):
        # +x, -y, -z from center -> octant digit 0b100 = 4
        p = np.array([[0.5, -0.5, -0.5]])
        keys = morton.encode(p, np.zeros(3), 1.0)
        assert morton.key_octant(keys, 0)[0] == 4

    def test_all_octants_distinct(self):
        offsets = np.array(
            [
                [sx, sy, sz]
                for sx in (-0.5, 0.5)
                for sy in (-0.5, 0.5)
                for sz in (-0.5, 0.5)
            ]
        )
        keys = morton.encode(offsets, np.zeros(3), 1.0)
        octants = morton.key_octant(keys, 0)
        assert sorted(octants.tolist()) == list(range(8))

    def test_depth_bounds(self):
        keys = np.zeros(1, dtype=np.uint64)
        with pytest.raises(ValueError, match="depth"):
            morton.key_octant(keys, -1)
        with pytest.raises(ValueError, match="depth"):
            morton.key_octant(keys, morton.MAX_DEPTH)

    def test_deeper_digits_refine(self):
        # a point clipped to the extreme (+,+,+) corner cell has octant 7
        # at every depth
        p = np.array([[1.0, 1.0, 1.0]])
        keys = morton.encode(p, np.zeros(3), 1.0)
        for d in range(morton.MAX_DEPTH):
            assert morton.key_octant(keys, d)[0] == 7


class TestSortedOrderContiguity:
    def test_octant_ranges_contiguous_after_sort(self, rng):
        """Sorted keys group each octant into one contiguous run (the
        property the octree build depends on)."""
        pos = rng.uniform(-1.0, 1.0, (2000, 3))
        keys = np.sort(morton.encode(pos, np.zeros(3), 1.001))
        digits = morton.key_octant(keys, 0)
        changes = np.count_nonzero(np.diff(digits) != 0)
        assert changes == len(np.unique(digits)) - 1

"""Unit tests for the octree build."""

import numpy as np
import pytest

from repro.errors import TreeError
from repro.tree.octree import build_octree


def _tree(particles, **kw):
    return build_octree(particles.positions, particles.masses, **kw)


class TestBuild:
    def test_invariants_plummer(self, plummer_small):
        tree = _tree(plummer_small, leaf_size=8)
        tree.validate()

    def test_invariants_uniform(self, uniform_small):
        tree = _tree(uniform_small, leaf_size=16)
        tree.validate()

    def test_root_covers_everything(self, plummer_small):
        tree = _tree(plummer_small)
        assert tree.starts[tree.root] == 0
        assert tree.ends[tree.root] == plummer_small.n

    def test_leaf_size_respected(self, plummer_small):
        tree = _tree(plummer_small, leaf_size=8)
        counts = tree.node_counts()
        assert np.all(counts[tree.is_leaf] <= 8)

    def test_leaf_nodes_tile_bodies(self, plummer_small):
        tree = _tree(plummer_small, leaf_size=8)
        leaves = tree.leaf_nodes()
        spans = sorted((int(tree.starts[i]), int(tree.ends[i])) for i in leaves)
        cursor = 0
        for s, e in spans:
            assert s == cursor
            cursor = e
        assert cursor == tree.n_bodies

    def test_root_monopole(self, plummer_small):
        tree = _tree(plummer_small)
        assert tree.node_masses[0] == pytest.approx(plummer_small.total_mass)
        np.testing.assert_allclose(
            tree.coms[0], plummer_small.center_of_mass(), atol=1e-12
        )

    def test_child_masses_sum_to_parent(self, plummer_small):
        tree = _tree(plummer_small, leaf_size=4)
        for i in range(tree.n_nodes):
            kids = tree.children[i][tree.children[i] >= 0]
            if kids.size:
                assert tree.node_masses[kids].sum() == pytest.approx(
                    tree.node_masses[i], rel=1e-12
                )

    def test_unsort_roundtrip(self, plummer_small):
        tree = _tree(plummer_small)
        recovered = tree.unsort(tree.positions)
        np.testing.assert_allclose(recovered, plummer_small.positions)

    def test_single_body(self):
        tree = build_octree(np.array([[1.0, 2.0, 3.0]]), np.array([2.0]))
        assert tree.n_nodes == 1
        assert tree.is_leaf[0]
        np.testing.assert_allclose(tree.coms[0], [1.0, 2.0, 3.0])

    def test_leaf_size_one(self, rng):
        pos = rng.uniform(-1, 1, (64, 3))
        tree = build_octree(pos, np.ones(64), leaf_size=1)
        tree.validate()
        counts = tree.node_counts()
        assert np.all(counts[tree.is_leaf] == 1)

    def test_coincident_bodies_terminate(self):
        # all bodies identical: subdivision cannot separate them; the build
        # must stop at Morton resolution instead of recursing forever
        pos = np.tile(np.array([[0.25, 0.25, 0.25]]), (10, 1))
        pos = np.vstack([pos, [[0.9, 0.9, 0.9]]])
        tree = build_octree(pos, np.ones(11), leaf_size=2)
        tree.validate()
        counts = tree.node_counts()
        assert counts[tree.is_leaf].max() >= 10  # the coincident clump stayed a leaf

    def test_explicit_bounding_cube(self, plummer_small):
        tree = _tree(plummer_small, center=np.zeros(3), half_width=50.0)
        tree.validate()
        assert tree.half_widths[0] == 50.0

    def test_node_sizes_are_double_half_widths(self, plummer_small):
        tree = _tree(plummer_small)
        np.testing.assert_allclose(tree.node_sizes(), 2.0 * tree.half_widths)


class TestBuildErrors:
    def test_zero_bodies(self):
        with pytest.raises(TreeError, match="zero bodies"):
            build_octree(np.zeros((0, 3)), np.zeros(0))

    def test_bad_position_shape(self):
        with pytest.raises(TreeError, match="positions"):
            build_octree(np.zeros((3, 2)), np.ones(3))

    def test_bad_mass_shape(self):
        with pytest.raises(TreeError, match="masses"):
            build_octree(np.zeros((3, 3)), np.ones(4))

    def test_bad_leaf_size(self):
        with pytest.raises(TreeError, match="leaf_size"):
            build_octree(np.zeros((2, 3)), np.ones(2), leaf_size=0)


class TestScaling:
    def test_node_count_scales_linearly(self):
        from repro.nbody.ic import plummer

        n1 = build_octree(
            plummer(1000, seed=1).positions, np.full(1000, 1e-3), leaf_size=16
        ).n_nodes
        n2 = build_octree(
            plummer(4000, seed=1).positions, np.full(4000, 2.5e-4), leaf_size=16
        ).n_nodes
        assert 2.0 < n2 / n1 < 8.0  # roughly linear in N

    def test_depth_reasonable_for_plummer(self, plummer_medium):
        tree = _tree(plummer_medium, leaf_size=16)
        assert tree.max_depth() <= 14

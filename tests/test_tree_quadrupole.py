"""Tests for the quadrupole-moment treecode extension."""

import numpy as np
import pytest

from repro.nbody.forces import accelerations_from_sources, direct_forces
from repro.tree.bh_force import rms_relative_error
from repro.tree.octree import build_octree
from repro.tree.quadrupole import bh_accelerations_quadrupole, quadrupole_moments
from repro.tree.traversal import bh_accelerations

EPS = 1e-2


@pytest.fixture(scope="module")
def tree(plummer_medium):
    return build_octree(plummer_medium.positions, plummer_medium.masses, leaf_size=16)


@pytest.fixture(scope="module")
def quads(tree):
    return quadrupole_moments(tree)


@pytest.fixture(scope="module")
def direct_ref(plummer_medium):
    return direct_forces(
        plummer_medium.positions, plummer_medium.masses, softening=EPS,
        include_self=False,
    )


class TestMoments:
    def test_traceless(self, quads):
        traces = np.einsum("nii->n", quads)
        np.testing.assert_allclose(traces, 0.0, atol=1e-10)

    def test_symmetric(self, quads):
        np.testing.assert_allclose(quads, np.transpose(quads, (0, 2, 1)), atol=1e-12)

    def test_leaf_with_single_body_is_zero(self):
        pos = np.array([[0.0, 0.0, 0.0], [3.0, 3.0, 3.0]])
        tree = build_octree(pos, np.ones(2), leaf_size=1)
        quads = quadrupole_moments(tree)
        for i in tree.leaf_nodes():
            if tree.node_counts()[i] == 1:
                np.testing.assert_allclose(quads[i], 0.0, atol=1e-12)

    def test_matches_direct_definition(self, tree, quads):
        """Prefix-sum moments equal the per-body definition on a few nodes."""
        for node in [0, tree.n_nodes // 2, tree.n_nodes - 1]:
            s, e = int(tree.starts[node]), int(tree.ends[node])
            x = tree.positions[s:e] - tree.coms[node]
            m = tree.masses[s:e]
            expected = np.einsum("i,ij,ik->jk", m, x, x) * 3.0
            expected -= np.eye(3) * (m * np.einsum("ij,ij->i", x, x)).sum()
            np.testing.assert_allclose(quads[node], expected, atol=1e-10)

    def test_scaling_quadratic_in_size(self):
        """Scaling all positions by s scales Q by s^2."""
        rng = np.random.default_rng(5)
        pos = rng.standard_normal((64, 3))
        m = rng.uniform(0.5, 2.0, 64)
        q1 = quadrupole_moments(build_octree(pos, m, leaf_size=8))[0]
        q2 = quadrupole_moments(build_octree(3.0 * pos, m, leaf_size=8))[0]
        np.testing.assert_allclose(q2, 9.0 * q1, rtol=1e-9)


class TestQuadrupoleForces:
    def test_more_accurate_than_monopole(self, tree, quads, direct_ref):
        for theta in (0.6, 1.0):
            mono = bh_accelerations(tree, theta=theta, softening=EPS)
            quad = bh_accelerations_quadrupole(
                tree, theta=theta, softening=EPS, quads=quads
            )
            e_mono = rms_relative_error(mono, direct_ref)
            e_quad = rms_relative_error(quad, direct_ref)
            assert e_quad < e_mono * 0.7, f"theta={theta}"

    def test_far_field_two_body_cell(self):
        """A two-body cell seen from afar: quadrupole captures the split."""
        pos = np.array([[0.5, 0.0, 0.0], [-0.5, 0.0, 0.0]])
        m = np.ones(2)
        tree = build_octree(pos, m, leaf_size=2, center=np.zeros(3), half_width=1.0)
        # force the cell to be treated as one multipole: evaluate far away
        target = np.array([[6.0, 2.0, 1.0]])
        exact = accelerations_from_sources(target, pos, m, softening=0.0)
        quad = bh_accelerations_quadrupole(tree, theta=10.0, targets=target)
        mono_err = np.linalg.norm(
            -tree.node_masses[0]
            * (target[0] - tree.coms[0])
            / np.linalg.norm(target[0] - tree.coms[0]) ** 3
            - exact[0]
        )
        quad_err = np.linalg.norm(quad[0] - exact[0])
        assert quad_err < mono_err * 0.3

    def test_equal_at_tiny_theta(self, tree, quads, direct_ref):
        """With everything opened, multipole order is irrelevant."""
        mono = bh_accelerations(tree, theta=0.05, softening=EPS)
        quad = bh_accelerations_quadrupole(tree, theta=0.05, softening=EPS, quads=quads)
        assert rms_relative_error(quad, mono) < 1e-5

    def test_g_scaling(self, tree, quads):
        a1 = bh_accelerations_quadrupole(tree, theta=0.6, softening=EPS, quads=quads)
        a2 = bh_accelerations_quadrupole(tree, theta=0.6, softening=EPS, quads=quads, G=2.0)
        np.testing.assert_allclose(a2, 2.0 * a1, rtol=1e-12)

    def test_rejects_bad_targets(self, tree):
        with pytest.raises(ValueError, match="targets"):
            bh_accelerations_quadrupole(tree, targets=np.zeros(3))

    def test_quads_computed_on_demand(self, tree, direct_ref):
        acc = bh_accelerations_quadrupole(tree, theta=0.6, softening=EPS)
        assert rms_relative_error(acc, direct_ref) < 0.01

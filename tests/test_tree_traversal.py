"""Unit tests for the per-body Barnes-Hut traversal (CPU reference)."""

import numpy as np
import pytest

from repro.nbody.forces import direct_forces
from repro.tree.bh_force import rms_relative_error
from repro.tree.octree import build_octree
from repro.tree.traversal import TraversalStats, bh_accelerations

EPS = 1e-2


@pytest.fixture(scope="module")
def medium_tree(plummer_medium):
    return build_octree(plummer_medium.positions, plummer_medium.masses, leaf_size=16)


@pytest.fixture(scope="module")
def medium_ref(plummer_medium):
    return direct_forces(
        plummer_medium.positions, plummer_medium.masses, softening=EPS,
        include_self=False,
    )


class TestAccuracy:
    def test_one_percent_at_standard_theta(self, medium_tree, medium_ref):
        acc = bh_accelerations(medium_tree, theta=0.6, softening=EPS)
        assert rms_relative_error(acc, medium_ref) < 0.01

    def test_error_decreases_with_theta(self, medium_tree, medium_ref):
        errs = [
            rms_relative_error(
                bh_accelerations(medium_tree, theta=t, softening=EPS), medium_ref
            )
            for t in (1.0, 0.6, 0.3)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_tiny_theta_approaches_direct(self, medium_tree, medium_ref):
        acc = bh_accelerations(medium_tree, theta=0.05, softening=EPS)
        assert rms_relative_error(acc, medium_ref) < 1e-5

    def test_momentum_approximately_conserved(self, medium_tree, plummer_medium):
        acc = bh_accelerations(medium_tree, theta=0.6, softening=EPS)
        net = plummer_medium.masses @ acc
        scale = np.abs(plummer_medium.masses[:, None] * acc).sum()
        assert np.linalg.norm(net) / scale < 0.01


class TestExternalTargets:
    def test_far_field_matches_monopole(self, medium_tree):
        target = np.array([[100.0, 0.0, 0.0]])
        acc = bh_accelerations(medium_tree, theta=0.6, targets=target)
        m = medium_tree.node_masses[0]
        com = medium_tree.coms[0]
        d = com - target[0]
        expected = m * d / np.linalg.norm(d) ** 3
        np.testing.assert_allclose(acc[0], expected, rtol=1e-3)

    def test_external_targets_match_direct(self, medium_tree, plummer_medium, rng):
        targets = rng.uniform(-2, 2, (20, 3)) + 5.0
        acc = bh_accelerations(medium_tree, theta=0.3, softening=EPS, targets=targets)
        from repro.nbody.forces import accelerations_from_sources

        ref = accelerations_from_sources(
            targets, plummer_medium.positions, plummer_medium.masses, softening=EPS
        )
        assert rms_relative_error(acc, ref) < 1e-3

    def test_rejects_bad_target_shape(self, medium_tree):
        with pytest.raises(ValueError, match="targets"):
            bh_accelerations(medium_tree, targets=np.zeros(3))


class TestStats:
    def test_stats_accumulate(self, medium_tree):
        stats = TraversalStats()
        bh_accelerations(medium_tree, theta=0.6, softening=EPS, stats=stats)
        assert stats.cell_interactions > 0
        assert stats.body_interactions > 0
        assert stats.nodes_visited > 0
        assert stats.total_interactions == (
            stats.cell_interactions + stats.body_interactions
        )

    def test_fewer_interactions_than_direct(self, medium_tree):
        stats = TraversalStats()
        bh_accelerations(medium_tree, theta=0.6, softening=EPS, stats=stats)
        n = medium_tree.n_bodies
        assert stats.total_interactions < n * n

    def test_smaller_theta_means_more_work(self, medium_tree):
        s_loose, s_tight = TraversalStats(), TraversalStats()
        bh_accelerations(medium_tree, theta=1.0, softening=EPS, stats=s_loose)
        bh_accelerations(medium_tree, theta=0.3, softening=EPS, stats=s_tight)
        assert s_tight.total_interactions > s_loose.total_interactions

    def test_g_scaling(self, medium_tree):
        a1 = bh_accelerations(medium_tree, theta=0.6, softening=EPS)
        a2 = bh_accelerations(medium_tree, theta=0.6, softening=EPS, G=3.0)
        np.testing.assert_allclose(a2, 3.0 * a1, rtol=1e-12)

"""Unit tests for walk (interaction-list) generation."""

import numpy as np
import pytest

from repro.tree.octree import build_octree
from repro.tree.walks import (
    cell_groups,
    generate_walks,
    make_groups,
    uniform_groups,
)

EPS = 1e-2


@pytest.fixture(scope="module")
def tree(plummer_medium):
    return build_octree(plummer_medium.positions, plummer_medium.masses, leaf_size=16)


def _covers_all(groups, n):
    order = np.argsort(groups[:, 0])
    g = groups[order]
    assert g[0, 0] == 0
    assert g[-1, 1] == n
    assert np.all(g[1:, 0] == g[:-1, 1])


class TestGrouping:
    def test_uniform_groups_cover(self):
        _covers_all(uniform_groups(1000, 256), 1000)

    def test_uniform_groups_sizes(self):
        g = uniform_groups(1000, 256)
        sizes = g[:, 1] - g[:, 0]
        assert sizes.max() <= 256
        assert len(g) == 4

    def test_uniform_groups_rejects_bad_args(self):
        with pytest.raises(ValueError):
            uniform_groups(10, 0)
        with pytest.raises(ValueError):
            uniform_groups(0, 10)

    def test_make_groups_cover(self, tree):
        _covers_all(make_groups(tree, 256), tree.n_bodies)

    def test_make_groups_size_bound(self, tree):
        g = make_groups(tree, 100)
        assert (g[:, 1] - g[:, 0]).max() <= 100

    def test_make_groups_align_to_leaves(self, tree):
        g = make_groups(tree, 256)
        leaf_starts = set(tree.starts[tree.leaf_nodes()].tolist()) | {tree.n_bodies}
        for s, e in g:
            assert int(s) in leaf_starts
            assert int(e) in leaf_starts

    def test_cell_groups_cover(self, tree):
        _covers_all(np.sort(cell_groups(tree, 256), axis=0), tree.n_bodies)

    def test_cell_groups_are_tree_cells(self, tree):
        g = cell_groups(tree, 256)
        spans = {(int(tree.starts[i]), int(tree.ends[i])) for i in range(tree.n_nodes)}
        for s, e in g:
            assert (int(s), int(e)) in spans

    def test_cell_groups_maximal(self, tree):
        """Every emitted cell sits just below an over-budget ancestor.

        (Chains of single-child nodes share a body span, so maximality is
        expressed over spans: some node *strictly containing* the emitted
        span must exceed the budget.)
        """
        budget = 64
        groups = cell_groups(tree, budget)
        counts = tree.node_counts()
        n = tree.n_bodies
        for s, e in groups:
            if (s, e) == (0, n):
                continue  # whole tree fits the budget
            has_big_ancestor = False
            for i in range(tree.n_nodes):
                si, ei = int(tree.starts[i]), int(tree.ends[i])
                strictly_contains = si <= s and ei >= e and (ei - si) > (e - s)
                if strictly_contains and counts[i] > budget:
                    has_big_ancestor = True
                    break
            assert has_big_ancestor, f"group [{s},{e}) is not maximal"

    def test_cell_groups_vary_more_than_packed(self, tree):
        gc = cell_groups(tree, 256)
        gp = make_groups(tree, 256)
        mean_cell = (gc[:, 1] - gc[:, 0]).mean()
        mean_packed = (gp[:, 1] - gp[:, 0]).mean()
        # packing fills groups much closer to the budget
        assert mean_packed > mean_cell


class TestGenerateWalks:
    def test_walks_cover_bodies(self, tree):
        ws = generate_walks(tree, theta=0.6, group_size=128)
        spans = sorted((w.start, w.end) for w in ws)
        cursor = 0
        for s, e in spans:
            assert s == cursor
            cursor = e
        assert cursor == tree.n_bodies

    def test_self_bodies_in_particle_list(self, tree):
        """Every walk's own bodies appear in its particle list (the
        leaf containing them can never be accepted as a monopole)."""
        ws = generate_walks(tree, theta=0.6, group_size=128)
        for w in ws:
            pl = set(w.particle_list.tolist())
            assert set(range(w.start, w.end)) <= pl

    def test_no_overlapping_cells_accepted(self, tree):
        ws = generate_walks(tree, theta=0.6, group_size=128)
        for w in ws:
            for c in w.cell_list:
                assert tree.ends[c] <= w.start or tree.starts[c] >= w.end

    def test_lists_disjoint_and_complete(self, tree):
        """Cell list + particle list exactly tile the body set: every body
        is covered by exactly one accepted cell or appears directly."""
        ws = generate_walks(tree, theta=0.6, group_size=128)
        for w in list(ws)[:5]:
            covered = np.zeros(tree.n_bodies, dtype=int)
            for c in w.cell_list:
                covered[tree.starts[c] : tree.ends[c]] += 1
            covered[w.particle_list] += 1
            assert np.all(covered == 1)

    def test_interactions_accounting(self, tree):
        ws = generate_walks(tree, theta=0.6, group_size=128)
        w = ws[0]
        assert w.interactions == w.n_bodies * w.list_length
        assert ws.total_interactions == sum(x.interactions for x in ws)

    def test_larger_theta_shortens_lists(self, tree):
        loose = generate_walks(tree, theta=1.0, group_size=128)
        tight = generate_walks(tree, theta=0.3, group_size=128)
        assert loose.total_interactions < tight.total_interactions

    def test_custom_groups(self, tree):
        groups = uniform_groups(tree.n_bodies, 64)
        ws = generate_walks(tree, theta=0.6, groups=groups)
        assert len(ws) == len(groups)

    def test_group_stats(self, tree):
        ws = generate_walks(tree, theta=0.6, group_size=128)
        assert ws.load_imbalance() >= 1.0
        assert ws.group_sizes().sum() == tree.n_bodies
        assert len(ws.list_lengths()) == len(ws)

    def test_rejects_bad_groups(self, tree):
        with pytest.raises(ValueError, match="groups"):
            generate_walks(tree, groups=np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError, match="out of range"):
            generate_walks(
                tree, groups=np.array([[0, tree.n_bodies + 5]], dtype=np.int64)
            )

"""Workload-sensitivity tests: PTPM predictions across mass distributions.

The PTPM analysis implies the plans' *relative* behaviour depends on the
workload's density structure: a uniform distribution produces even walks
(static assignment nearly as good as the queue; high w-parallel lane
utilisation), while clustered/anisotropic distributions produce the skew
the jw mechanisms exist for.  These tests pin that dependence.
"""

import numpy as np
import pytest

from repro.bench.experiments import table2
from repro.core import JwParallelPlan, PlanConfig, WParallelPlan
from repro.core.scheduler import schedule_walks
from repro.nbody.ic import cold_disc, plummer, uniform_sphere

EPS = 1e-2
N = 8192


def _walks(particles):
    plan = WParallelPlan(PlanConfig(softening=EPS))
    return plan.prepare(particles.positions, particles.masses)


@pytest.fixture(scope="module")
def walks_uniform():
    return _walks(uniform_sphere(N, seed=91))


@pytest.fixture(scope="module")
def walks_plummer():
    return _walks(plummer(N, seed=91))


@pytest.fixture(scope="module")
def walks_disc():
    return _walks(cold_disc(N, seed=91))


class TestImbalanceByWorkload:
    def test_uniform_more_balanced_than_plummer(self, walks_uniform, walks_plummer):
        assert walks_uniform.load_imbalance() < walks_plummer.load_imbalance()

    def test_clustered_workloads_have_size_spread(self, walks_plummer):
        sizes = walks_plummer.group_sizes()
        assert sizes.std() / sizes.mean() > 0.3

    def test_uniform_walk_costs_less_skewed(self, walks_uniform, walks_plummer):
        """Uniform density gives lower relative cost spread per walk.

        (The raw static/dynamic makespan gap also depends on how many
        walks each worker gets — with few walks per worker, round-robin
        quantisation dominates — so the distributional claim is about the
        cost spread, not the gap itself.)
        """
        def cv(ws):
            costs = ws.interactions_per_walk().astype(float)
            return costs.std() / costs.mean()

        assert cv(walks_uniform) < cv(walks_plummer)

    def test_dynamic_queue_helps_on_both(self, walks_uniform, walks_plummer):
        for ws in (walks_uniform, walks_plummer):
            costs = ws.interactions_per_walk().astype(float)
            st = schedule_walks(costs, 18, "static").makespan
            dy = schedule_walks(costs, 18, "dynamic").makespan
            assert dy <= st

    def test_all_workloads_covered_exactly_once(
        self, walks_uniform, walks_plummer, walks_disc
    ):
        for ws in (walks_uniform, walks_plummer, walks_disc):
            covered = np.zeros(ws.tree.n_bodies, dtype=int)
            for w in ws:
                covered[w.start : w.end] += 1
            assert np.all(covered == 1)


class TestPlanOrderingRobustness:
    @pytest.mark.parametrize("workload", ["uniform", "two_clusters", "disc"])
    def test_jw_still_beats_w_on_other_workloads(self, workload):
        res = table2(n_values=(8192,), workload=workload)
        rows = res.data["rows"]
        tw = next(r for r in rows if r.plan == "w").total_seconds
        tjw = next(r for r in rows if r.plan == "jw").total_seconds
        assert tw / tjw > 1.3, workload

    def test_jw_breakdown_deterministic(self):
        p = plummer(2048, seed=92)
        cfg = PlanConfig(softening=EPS)
        b1 = JwParallelPlan(cfg).step_breakdown(p.positions, p.masses)
        b2 = JwParallelPlan(cfg).step_breakdown(p.positions, p.masses)
        assert b1.total_seconds == b2.total_seconds
        assert b1.interactions == b2.interactions

    def test_interactions_scale_with_density_structure(self):
        """Clustered systems need more near-field work per body."""
        cfg = PlanConfig(softening=EPS)
        u = uniform_sphere(N, seed=93)
        d = cold_disc(N, seed=93)
        bu = JwParallelPlan(cfg).step_breakdown(u.positions, u.masses)
        bd = JwParallelPlan(cfg).step_breakdown(d.positions, d.masses)
        # the flattened disc concentrates bodies -> longer particle lists
        assert bd.interactions != bu.interactions  # structure matters at all
        assert bd.meta["mean_list_length"] > 0
